//! The fundamental GraphBLAS operations of Table II, as methods on
//! [`Context`]:
//!
//! | paper | method(s) |
//! |---|---|
//! | mxm | [`Context::mxm`] |
//! | mxv | [`Context::mxv`] |
//! | vxm | [`Context::vxm`] |
//! | eWiseMult | [`Context::ewise_mult_matrix`], [`Context::ewise_mult_vector`] |
//! | eWiseAdd | [`Context::ewise_add_matrix`], [`Context::ewise_add_vector`] |
//! | reduce (row) | [`Context::reduce_rows`], plus scalar reductions |
//! | apply | [`Context::apply_matrix`], [`Context::apply_vector`] |
//! | transpose | [`Context::transpose`] |
//! | extract | [`Context::extract_matrix`], [`Context::extract_vector`], [`Context::extract_col`] |
//! | assign | [`Context::assign_matrix`], [`Context::assign_vector`], [`Context::assign_scalar_matrix`], [`Context::assign_scalar_vector`] |
//!
//! Every method follows Figure 2's three-stage semantics: form the
//! internal inputs per the descriptor, compute the internal result **T**,
//! then `Z = C ⊙ T` and the masked write. API errors (dimensions,
//! indices) are checked eagerly, before any computation and in both
//! modes; execution errors follow §V.

mod apply;
mod assign;
mod diag;
mod ewise;
mod extract;
mod kron;
mod mxm;
mod mxv;
mod reduce;
mod select;
mod transpose;

use std::sync::Arc;

use crate::error::{dim_check, Error, Result};
use crate::exec::{Completable, Context, Node};
use crate::index::Index;
use crate::object::matrix::MatrixNode;
use crate::object::vector::VectorNode;
use crate::object::{Matrix, Vector};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::MatrixStore;
use crate::storage::vec::SparseVec;

impl Context {
    /// Install a pending node for `out` and run/defer it per the mode,
    /// applying any injected test fault. `kind` is the Table II
    /// operation name, surfaced in execution traces. The computed CSR is
    /// stored under the output object's format policy — migration (if
    /// any) happens here, at completion time, once.
    pub(crate) fn submit_matrix<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Matrix<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<Csr<T>> + Send>,
    ) -> Result<()> {
        self.submit_matrix_store(
            kind,
            out,
            deps,
            Box::new(move || eval().map(MatrixStore::csr)),
        )
    }

    /// [`Context::submit_matrix`] for evaluators that produce a
    /// [`MatrixStore`] natively (fast-path kernels emitting bitmap or
    /// hypersparse output directly). The policy still has the last word:
    /// `apply_policy` re-stores when the hint disagrees with what the
    /// kernel produced.
    pub(crate) fn submit_matrix_store<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Matrix<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<MatrixStore<T>> + Send>,
    ) -> Result<()> {
        self.submit_matrix_store_fusable(kind, out, deps, eval)
            .map(|_| ())
    }

    /// [`Context::submit_matrix_store`] that additionally returns the
    /// installed node when the operation is a fusion candidate — so the
    /// caller can attach a producer face and/or consumer rewrite hook
    /// (see `exec::fuse`). Returns `None` (plain submission) in blocking
    /// mode, under `FusePolicy::Off`, or when a fault was injected.
    pub(crate) fn submit_matrix_store_fusable<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Matrix<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<MatrixStore<T>> + Send>,
    ) -> Result<Option<Arc<MatrixNode<T>>>> {
        let policy = out.format_policy();
        let fault = self.take_fault();
        let fusable = fault.is_none() && self.fusion_active();
        let eval: Box<dyn FnOnce() -> Result<MatrixStore<T>> + Send> = match fault {
            Some(f) => Box::new(move || Err(f)),
            None => Box::new(move || eval().map(|s| s.apply_policy(policy))),
        };
        let node = Node::pending_kind(kind, deps, eval);
        // The operation overwrites the output's whole value, so any
        // still-buffered point updates are dead by program order. (When
        // the write stage needed the old value — accum or mask — its
        // capture already resolved and drained the buffer.)
        out.discard_pending();
        out.install(node.clone());
        if fusable {
            node.set_observe_probe(out.observe_probe(&node));
        }
        self.finish_op(node.clone())?;
        Ok(fusable.then_some(node))
    }

    /// [`Context::submit_matrix`] returning the node for fusion wiring;
    /// see [`Context::submit_matrix_store_fusable`].
    pub(crate) fn submit_matrix_fusable<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Matrix<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<Csr<T>> + Send>,
    ) -> Result<Option<Arc<MatrixNode<T>>>> {
        self.submit_matrix_store_fusable(
            kind,
            out,
            deps,
            Box::new(move || eval().map(MatrixStore::csr)),
        )
    }

    pub(crate) fn submit_vector<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Vector<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<SparseVec<T>> + Send>,
    ) -> Result<()> {
        self.submit_vector_fusable(kind, out, deps, eval)
            .map(|_| ())
    }

    /// Vector counterpart of [`Context::submit_matrix_store_fusable`].
    pub(crate) fn submit_vector_fusable<T: Scalar>(
        &self,
        kind: &'static str,
        out: &Vector<T>,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<SparseVec<T>> + Send>,
    ) -> Result<Option<Arc<VectorNode<T>>>> {
        let fault = self.take_fault();
        let fusable = fault.is_none() && self.fusion_active();
        let eval: Box<dyn FnOnce() -> Result<SparseVec<T>> + Send> = match fault {
            Some(f) => Box::new(move || Err(f)),
            None => eval,
        };
        let node = Node::pending_kind(kind, deps, eval);
        // See submit_matrix_store_fusable: pending point updates on the
        // output are dead once the operation overwrites it.
        out.discard_pending();
        out.install(node.clone());
        if fusable {
            node.set_observe_probe(out.observe_probe(&node));
        }
        self.finish_op(node.clone())?;
        Ok(fusable.then_some(node))
    }
}

/// Deferred capture of an operation's *old output value*.
///
/// The write stage only consults the previous content of the output
/// when an accumulator is present or a mask can exclude positions
/// (merge/replace against old values). When neither holds, the output
/// is overwritten wholesale — so the old node is **not** captured as a
/// dependency, which lets nonblocking mode elide entire chains of
/// overwritten intermediates (§IV lazy evaluation) and releases their
/// memory immediately.
pub(crate) struct OldMatrix<T: Scalar> {
    node: Option<Arc<crate::object::matrix::MatrixNode<T>>>,
    nrows: Index,
    ncols: Index,
}

impl<T: Scalar> Clone for OldMatrix<T> {
    fn clone(&self) -> Self {
        OldMatrix {
            node: self.node.clone(),
            nrows: self.nrows,
            ncols: self.ncols,
        }
    }
}

impl<T: Scalar> OldMatrix<T> {
    pub(crate) fn capture(c: &Matrix<T>, needed: bool) -> Self {
        OldMatrix {
            node: needed.then(|| c.capture()),
            nrows: c.nrows(),
            ncols: c.ncols(),
        }
    }

    pub(crate) fn dep(&self) -> Option<Arc<dyn Completable>> {
        self.node.clone().map(|n| n as Arc<dyn Completable>)
    }

    /// The old content as CSR — or an empty stand-in when the write
    /// stage can't observe it anyway.
    pub(crate) fn storage(&self) -> Result<std::sync::Arc<Csr<T>>> {
        match &self.node {
            Some(n) => Ok(n.ready_storage()?.row_csr()),
            None => Ok(Arc::new(Csr::empty(self.nrows, self.ncols))),
        }
    }
}

/// Vector counterpart of [`OldMatrix`].
pub(crate) struct OldVector<T: Scalar> {
    node: Option<Arc<crate::object::vector::VectorNode<T>>>,
    n: Index,
}

impl<T: Scalar> Clone for OldVector<T> {
    fn clone(&self) -> Self {
        OldVector {
            node: self.node.clone(),
            n: self.n,
        }
    }
}

impl<T: Scalar> OldVector<T> {
    pub(crate) fn capture(w: &Vector<T>, needed: bool) -> Self {
        OldVector {
            node: needed.then(|| w.capture()),
            n: w.size(),
        }
    }

    pub(crate) fn dep(&self) -> Option<Arc<dyn Completable>> {
        self.node.clone().map(|n| n as Arc<dyn Completable>)
    }

    pub(crate) fn storage(&self) -> Result<std::sync::Arc<SparseVec<T>>> {
        match &self.node {
            Some(n) => n.ready_storage(),
            None => Ok(Arc::new(SparseVec::empty(self.n))),
        }
    }
}

/// Dimensions of a matrix argument after the descriptor's transposition.
pub(crate) fn effective_dims<T: Scalar>(m: &Matrix<T>, transposed: bool) -> (Index, Index) {
    if transposed {
        (m.ncols(), m.nrows())
    } else {
        (m.nrows(), m.ncols())
    }
}

/// Mask dimensions must match the output (Figure 2: "the mask dimensions
/// must match those of the matrix C").
pub(crate) fn check_mask_dims2(mask: Option<(Index, Index)>, out: (Index, Index)) -> Result<()> {
    if let Some(md) = mask {
        dim_check(md == out, || {
            format!(
                "mask is {}x{} but output is {}x{}",
                md.0, md.1, out.0, out.1
            )
        })?;
    }
    Ok(())
}

pub(crate) fn check_mask_dims1(mask: Option<Index>, out: Index) -> Result<()> {
    if let Some(ms) = mask {
        dim_check(ms == out, || {
            format!("mask has size {ms} but output has size {out}")
        })?;
    }
    Ok(())
}

/// Reject duplicate output indices in `assign` targets (the C spec leaves
/// them undefined; we make the error explicit).
pub(crate) fn check_no_duplicates(indices: &[Index], what: &str) -> Result<()> {
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(Error::InvalidValue(format!(
            "duplicate {what} indices in assign target"
        )));
    }
    Ok(())
}
