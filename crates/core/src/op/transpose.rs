//! `GrB_transpose` (Table II): `C<Mask> ⊙= A^T`.
//!
//! The plain form (`C = A^T`, no mask/accum) resolves to the input node's
//! memoized transpose, so repeated transposition of the same operand —
//! and a `transpose` followed by operations that ask for `A^T` again —
//! costs one counting sort in total (the nonblocking "don't rematerialize"
//! latitude of §IV).

use crate::accum::Accumulate;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::kernel::write::write_matrix;
use crate::object::mask_arg::MatrixMask;
use crate::object::matrix::oriented_storage;
use crate::object::Matrix;
use crate::op::{check_mask_dims2, effective_dims};
use crate::scalar::Scalar;

impl Context {
    /// `GrB_transpose(C, Mask, accum, A, desc)`.
    ///
    /// Note the C API quirk, preserved here: `GrB_INP0 = GrB_TRAN`
    /// transposes the input *before* the operation's own transposition, so
    /// setting it makes the operation copy `A` as-is.
    pub fn transpose<T, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        a: &Matrix<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        // the operation transposes on top of the descriptor
        let (am, an) = effective_dims(a, !tr_a);
        dim_check(c.shape() == (am, an), || {
            format!(
                "transpose output is {:?} but result is {am}x{an}",
                c.shape()
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let t_st = oriented_storage(&a_node, !tr_a)?;
            let c_old = c_old_cap.storage()?;
            let mcsr = msnap.materialize()?;
            let out = write_matrix(&c_old, (*t_st).clone(), &accum, &mcsr, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_matrix("transpose", c, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;
    use crate::error::Error;
    use crate::mask::NoMask;

    #[test]
    fn plain_transpose() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(0, 2, 5), (1, 0, 7)]).unwrap();
        let c = Matrix::<i32>::new(3, 2).unwrap();
        ctx.transpose(&c, NoMask, NoAccum, &a, &Descriptor::default())
            .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 1, 7), (2, 0, 5)]);
    }

    #[test]
    fn transpose_of_transpose_is_copy() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(0, 2, 5)]).unwrap();
        let c = Matrix::<i32>::new(2, 3).unwrap();
        ctx.transpose(
            &c,
            NoMask,
            NoAccum,
            &a,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), a.extract_tuples().unwrap());
    }

    #[test]
    fn masked_accumulated_transpose() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 2, &[(0, 1, 5), (1, 0, 7)]).unwrap();
        let c = Matrix::from_tuples(2, 2, &[(0, 1, 100)]).unwrap();
        let mask = Matrix::from_tuples(2, 2, &[(0, 1, true)]).unwrap();
        ctx.transpose(
            &c,
            &mask,
            Accum(Plus::<i32>::new()),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        // T = A^T has (0,1)=7; admitted (0,1): 100+7; nothing else admitted
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 1, 107)]);
    }

    #[test]
    fn dims_checked() {
        let ctx = Context::blocking();
        let a = Matrix::<i32>::new(2, 3).unwrap();
        let c = Matrix::<i32>::new(2, 3).unwrap(); // should be 3x2
        assert!(matches!(
            ctx.transpose(&c, NoMask, NoAccum, &a, &Descriptor::default()),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
