//! `GrB_select` (documented extension; GraphBLAS 2.0):
//! `C<Mask> ⊙= select(op, A)` — keep the stored elements satisfying an
//! index-aware predicate, with the standard Figure 2 write pipeline.

use crate::accum::Accumulate;
use crate::algebra::indexop::IndexSelectOp;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::kernel::write::{write_matrix, write_vector};
use crate::object::mask_arg::{MatrixMask, VectorMask};
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, effective_dims};
use crate::scalar::Scalar;

impl Context {
    /// `GrB_select` (matrix): `C<Mask> ⊙= select(op, A)`.
    pub fn select_matrix<T, F, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        op: F,
        a: &Matrix<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        F: IndexSelectOp<T>,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let da = effective_dims(a, tr_a);
        dim_check(c.shape() == da, || {
            format!("select output is {:?} but input is {da:?}", c.shape())
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let c_old = c_old_cap.storage()?;
            let mcsr = msnap.materialize()?;
            let t = a_st.filter(|i, j, v| op.keep(i, j, v));
            let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_matrix("select", c, deps, Box::new(eval))
    }

    /// `GrB_select` (vector): `w<mask> ⊙= select(op, u)` (the predicate
    /// sees `j = 0`).
    pub fn select_vector<T, F, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        op: F,
        u: &Vector<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        F: IndexSelectOp<T>,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        dim_check(w.size() == u.size(), || {
            format!("select output is {} but input is {}", w.size(), u.size())
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let u_node = u.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let u_st = u_node.ready_storage()?;
            let w_old = w_old_cap.storage()?;
            let mvec = msnap.materialize()?;
            let t = u_st.filter(|i, v| op.keep(i, 0, v));
            let out = write_vector(&w_old, t, &accum, &mvec, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_vector("select", w, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NoAccum;
    use crate::algebra::indexop::{select_fn, Diag, Tril, Triu, ValueGt};
    use crate::mask::NoMask;

    fn a() -> Matrix<i32> {
        Matrix::from_tuples(
            3,
            3,
            &[
                (0, 0, 1),
                (0, 2, 2),
                (1, 0, 3),
                (1, 1, 4),
                (2, 1, 5),
                (2, 2, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tril_and_triu() {
        let ctx = Context::blocking();
        let l = Matrix::<i32>::new(3, 3).unwrap();
        ctx.select_matrix(
            &l,
            NoMask,
            NoAccum,
            Tril::new(-1),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(l.extract_tuples().unwrap(), vec![(1, 0, 3), (2, 1, 5)]);
        let u = Matrix::<i32>::new(3, 3).unwrap();
        ctx.select_matrix(
            &u,
            NoMask,
            NoAccum,
            Triu::new(1),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(u.extract_tuples().unwrap(), vec![(0, 2, 2)]);
        // tril(-1) ∪ diag(0) ∪ triu(1) partitions the pattern
        let d = Matrix::<i32>::new(3, 3).unwrap();
        ctx.select_matrix(
            &d,
            NoMask,
            NoAccum,
            Diag::new(0),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            l.nvals().unwrap() + d.nvals().unwrap() + u.nvals().unwrap(),
            a().nvals().unwrap()
        );
    }

    #[test]
    fn value_threshold() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(3, 3).unwrap();
        ctx.select_matrix(
            &c,
            NoMask,
            NoAccum,
            ValueGt(3),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(1, 1, 4), (2, 1, 5), (2, 2, 6)]
        );
    }

    #[test]
    fn select_vector_with_closure() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[10, 11, 12, 13]).unwrap();
        let w = Vector::<i32>::new(4).unwrap();
        ctx.select_vector(
            &w,
            NoMask,
            NoAccum,
            select_fn(|i, _, v: &i32| i % 2 == 0 && *v > 10),
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(2, 12)]);
    }

    #[test]
    fn select_on_transposed_input() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(3, 3).unwrap();
        // tril of A^T = transposed triu of A
        ctx.select_matrix(
            &c,
            NoMask,
            NoAccum,
            Tril::new(-1),
            &a(),
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(2, 0, 2)]);
    }

    #[test]
    fn masked_select() {
        let ctx = Context::blocking();
        let mask = Matrix::from_tuples(3, 3, &[(1, 0, true)]).unwrap();
        let c = Matrix::from_tuples(3, 3, &[(0, 0, 99)]).unwrap();
        ctx.select_matrix(
            &c,
            &mask,
            NoAccum,
            Tril::new(0),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        // merge: only (1,0) admitted -> 3; old (0,0) kept
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 99), (1, 0, 3)]);
    }

    #[test]
    fn dims_checked() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(2, 3).unwrap();
        assert!(ctx
            .select_matrix(
                &c,
                NoMask,
                NoAccum,
                Tril::new(0),
                &a(),
                &Descriptor::default()
            )
            .is_err());
    }
}
