//! `GrB_apply` (Table II): `C<Mask> ⊙= F_u(A)` / `w<mask> ⊙= F_u(u)`.
//!
//! `apply` is both the most fusable *consumer* (a unary op composes over
//! any producer's output stage) and a fusable *producer* (it preserves
//! the input pattern, so downstream rewrites can traverse it lazily).
//! When submitted under an active [`crate::exec::FusePolicy`], each call
//! therefore installs a producer face and a consumer rewrite hook on its
//! node; see `exec::fuse` for the pass that runs them.

use std::any::Any;
use std::sync::Arc;

use crate::accum::Accumulate;
use crate::algebra::unary::UnaryOp;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::fuse::{
    addr, face_as, DotFn, FuseCtx, FusedEvent, FusedNote, LazyMat, LazyVec, MatProducer,
    VecProducer,
};
use crate::exec::{Completable, Context};
use crate::kernel::apply::{apply_matrix, apply_vector};
use crate::kernel::write::{write_matrix, write_vector};
use crate::mask::{MaskCsr, MaskVec};
use crate::object::mask_arg::{MaskSnap1, MaskSnap2, MatrixMask, VectorMask};
use crate::object::matrix::{oriented_storage, MatrixNode};
use crate::object::vector::VectorNode;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, effective_dims, OldMatrix, OldVector};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::{FormatPolicy, MatrixStore};
use crate::storage::vec::SparseVec;

/// The producer face of a pure (unaccumulated, unmasked) matrix apply:
/// pattern-preserving, so it offers all three forms — masked recompute
/// (mask ignored; apply admits no pushdown win), lazy pattern+thunk for
/// chain fusion, and row-major emission for reduce fusion.
fn apply_mat_face<D1, D2, F>(a_node: &Arc<MatrixNode<D1>>, tr_a: bool, f: &F) -> MatProducer<D2>
where
    D1: Scalar,
    D2: Scalar,
    F: UnaryOp<D1, D2>,
{
    let compute = {
        let (a_node, f) = (a_node.clone(), f.clone());
        Arc::new(move |_m: &MaskCsr| -> Result<Csr<D2>> {
            let a_st = oriented_storage(&a_node, tr_a)?;
            Ok(apply_matrix(&a_st, &f))
        }) as Arc<dyn Fn(&MaskCsr) -> Result<Csr<D2>> + Send + Sync>
    };
    let lazy = {
        let (a_node, f) = (a_node.clone(), f.clone());
        Some(Arc::new(move || -> Result<LazyMat<D2>> {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let f = f.clone();
            Ok(LazyMat {
                nrows: a_st.nrows(),
                ncols: a_st.ncols(),
                row_ptr: a_st.row_ptr().to_vec(),
                col_idx: a_st.col_idx().to_vec(),
                val_at: Box::new(move |k| f.apply(&a_st.vals()[k])),
            })
        })
            as Arc<dyn Fn() -> Result<LazyMat<D2>> + Send + Sync>)
    };
    let dot = {
        let (a_node, f) = (a_node.clone(), f.clone());
        Some(Arc::new(move |emit: &mut dyn FnMut(D2)| -> Result<()> {
            let a_st = oriented_storage(&a_node, tr_a)?;
            for v in a_st.vals() {
                emit(f.apply(v));
            }
            Ok(())
        }) as DotFn<D2>)
    };
    MatProducer {
        deps: vec![a_node.clone() as Arc<dyn Completable>],
        compute,
        maskable: false,
        lazy,
        dot,
        kind: "apply",
    }
}

/// Vector counterpart of [`apply_mat_face`].
fn apply_vec_face<D1, D2, F>(u_node: &Arc<VectorNode<D1>>, f: &F) -> VecProducer<D2>
where
    D1: Scalar,
    D2: Scalar,
    F: UnaryOp<D1, D2>,
{
    let compute = {
        let (u_node, f) = (u_node.clone(), f.clone());
        Arc::new(move |_m: &MaskVec| -> Result<SparseVec<D2>> {
            let u_st = u_node.ready_storage()?;
            Ok(apply_vector(&u_st, &f))
        }) as Arc<dyn Fn(&MaskVec) -> Result<SparseVec<D2>> + Send + Sync>
    };
    let lazy = {
        let (u_node, f) = (u_node.clone(), f.clone());
        Some(Arc::new(move || -> Result<LazyVec<D2>> {
            let u_st = u_node.ready_storage()?;
            let f = f.clone();
            Ok(LazyVec {
                size: u_st.size(),
                indices: u_st.indices().to_vec(),
                val_at: Box::new(move |k| f.apply(&u_st.vals()[k])),
            })
        })
            as Arc<dyn Fn() -> Result<LazyVec<D2>> + Send + Sync>)
    };
    let dot = {
        let (u_node, f) = (u_node.clone(), f.clone());
        Some(Arc::new(move |emit: &mut dyn FnMut(D2)| -> Result<()> {
            let u_st = u_node.ready_storage()?;
            for v in u_st.vals() {
                emit(f.apply(v));
            }
            Ok(())
        }) as DotFn<D2>)
    };
    VecProducer {
        deps: vec![u_node.clone() as Arc<dyn Completable>],
        compute,
        maskable: false,
        lazy,
        dot,
        kind: "apply",
    }
}

/// Install the consumer-side rewrite hook on a matrix apply node: if the
/// input producer turns out exclusively dead at wait time and exposes a
/// face, compose this apply over it and swap the fused evaluator in.
#[allow(clippy::too_many_arguments)]
fn install_apply_mat_hook<D1, D2, F, Ac>(
    node: &Arc<MatrixNode<D2>>,
    a_node: &Arc<MatrixNode<D1>>,
    f: F,
    accum: Ac,
    msnap: MaskSnap2,
    c_old: OldMatrix<D2>,
    replace: bool,
    policy: FormatPolicy,
) where
    D1: Scalar,
    D2: Scalar,
    F: UnaryOp<D1, D2>,
    Ac: Accumulate<D2>,
{
    let me = Arc::downgrade(node);
    let producer: Arc<dyn Completable> = a_node.clone();
    let prod_node = a_node.clone();
    node.set_fuse_hook(Box::new(move |cx: &FuseCtx| {
        let me = me.upgrade()?;
        if !cx.exclusively_dead(&producer) {
            return None;
        }
        let face = face_as::<MatProducer<D1>>(prod_node.fuse_face()?)?;
        let comp = Arc::new(face.map(&f));
        let use_mask = comp.maskable && !msnap.is_all();
        let rewrite = if use_mask {
            "mask-pushdown"
        } else if comp.lazy.is_some() {
            "apply-chain"
        } else {
            "apply-into-producer"
        };
        let mut new_deps: Vec<Arc<dyn Completable>> = comp.deps.clone();
        new_deps.extend(c_old.dep());
        new_deps.extend(msnap.deps());
        let note = FusedNote {
            rewrite,
            producer: face.kind,
            consumer: "apply",
        };
        let eval = {
            let comp = comp.clone();
            let (accum, msnap, c_old) = (accum.clone(), msnap.clone(), c_old.clone());
            Box::new(move || -> Result<MatrixStore<D2>> {
                let old = c_old.storage()?;
                let mcsr = msnap.materialize()?;
                let t = if use_mask {
                    (comp.compute)(&mcsr)?
                } else if let Some(lz) = &comp.lazy {
                    lz()?.materialize()
                } else {
                    (comp.compute)(&MaskCsr::All)?
                };
                let out = write_matrix(&old, t, &accum, &mcsr, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(MatrixStore::csr(out).apply_policy(policy))
            })
        };
        if !me.replace_pending(new_deps, eval) {
            return None;
        }
        if !Ac::IS_ACCUM && msnap.is_all() {
            // Pure fused apply: re-install the *composed* face so a
            // further downstream consumer cascades over it (a stale face
            // here would resurrect the just-absorbed producer edge).
            me.set_fuse_face(comp as Arc<dyn Any + Send + Sync>);
        }
        Some(FusedEvent {
            note,
            absorbed: addr(&producer),
        })
    }));
}

/// Vector counterpart of [`install_apply_mat_hook`].
fn install_apply_vec_hook<D1, D2, F, Ac>(
    node: &Arc<VectorNode<D2>>,
    u_node: &Arc<VectorNode<D1>>,
    f: F,
    accum: Ac,
    msnap: MaskSnap1,
    w_old: OldVector<D2>,
    replace: bool,
) where
    D1: Scalar,
    D2: Scalar,
    F: UnaryOp<D1, D2>,
    Ac: Accumulate<D2>,
{
    let me = Arc::downgrade(node);
    let producer: Arc<dyn Completable> = u_node.clone();
    let prod_node = u_node.clone();
    node.set_fuse_hook(Box::new(move |cx: &FuseCtx| {
        let me = me.upgrade()?;
        if !cx.exclusively_dead(&producer) {
            return None;
        }
        let face = face_as::<VecProducer<D1>>(prod_node.fuse_face()?)?;
        let comp = Arc::new(face.map(&f));
        let use_mask = comp.maskable && !msnap.is_all();
        let rewrite = if use_mask {
            "mask-pushdown"
        } else if comp.lazy.is_some() {
            "apply-chain"
        } else {
            "apply-into-producer"
        };
        let mut new_deps: Vec<Arc<dyn Completable>> = comp.deps.clone();
        new_deps.extend(w_old.dep());
        new_deps.extend(msnap.deps());
        let note = FusedNote {
            rewrite,
            producer: face.kind,
            consumer: "apply",
        };
        let eval = {
            let comp = comp.clone();
            let (accum, msnap, w_old) = (accum.clone(), msnap.clone(), w_old.clone());
            Box::new(move || -> Result<SparseVec<D2>> {
                let old = w_old.storage()?;
                let mvec = msnap.materialize()?;
                let t = if use_mask {
                    (comp.compute)(&mvec)?
                } else if let Some(lz) = &comp.lazy {
                    lz()?.materialize()
                } else {
                    (comp.compute)(&MaskVec::All)?
                };
                let out = write_vector(&old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            })
        };
        if !me.replace_pending(new_deps, eval) {
            return None;
        }
        if !Ac::IS_ACCUM && msnap.is_all() {
            me.set_fuse_face(comp as Arc<dyn Any + Send + Sync>);
        }
        Some(FusedEvent {
            note,
            absorbed: addr(&producer),
        })
    }));
}

impl Context {
    /// `GrB_apply` (matrix): apply a unary operator to every stored
    /// element; pattern preserved.
    pub fn apply_matrix<D1, D2, F, Ac, Mk>(
        &self,
        c: &Matrix<D2>,
        mask: Mk,
        accum: Ac,
        f: F,
        a: &Matrix<D1>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        F: UnaryOp<D1, D2>,
        Ac: Accumulate<D2>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let da = effective_dims(a, tr_a);
        dim_check(c.shape() == da, || {
            format!("apply output is {:?} but input is {da:?}", c.shape())
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = {
            let (a_node, f, accum) = (a_node.clone(), f.clone(), accum.clone());
            let (msnap, c_old_cap) = (msnap.clone(), c_old_cap.clone());
            move || {
                let a_st = oriented_storage(&a_node, tr_a)?;
                let c_old = c_old_cap.storage()?;
                let mcsr = msnap.materialize()?;
                let t = apply_matrix(&a_st, &f);
                let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let Some(node) = self.submit_matrix_fusable("apply", c, deps, Box::new(eval))? else {
            return Ok(());
        };
        if !Ac::IS_ACCUM && msnap.is_all() {
            node.set_fuse_face(
                Arc::new(apply_mat_face(&a_node, tr_a, &f)) as Arc<dyn Any + Send + Sync>
            );
        }
        if !tr_a {
            // With INP0 transposed the composition over the producer's
            // face would need a transpose stage; not worth the rewrite.
            install_apply_mat_hook(
                &node,
                &a_node,
                f,
                accum,
                msnap,
                c_old_cap,
                replace,
                c.format_policy(),
            );
        }
        Ok(())
    }

    /// `GrB_apply` (vector).
    pub fn apply_vector<D1, D2, F, Ac, Mk>(
        &self,
        w: &Vector<D2>,
        mask: Mk,
        accum: Ac,
        f: F,
        u: &Vector<D1>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        F: UnaryOp<D1, D2>,
        Ac: Accumulate<D2>,
        Mk: VectorMask,
    {
        dim_check(w.size() == u.size(), || {
            format!("apply output is {} but input is {}", w.size(), u.size())
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let u_node = u.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = {
            let (u_node, f, accum) = (u_node.clone(), f.clone(), accum.clone());
            let (msnap, w_old_cap) = (msnap.clone(), w_old_cap.clone());
            move || {
                let u_st = u_node.ready_storage()?;
                let w_old = w_old_cap.storage()?;
                let mvec = msnap.materialize()?;
                let t = apply_vector(&u_st, &f);
                let out = write_vector(&w_old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let Some(node) = self.submit_vector_fusable("apply", w, deps, Box::new(eval))? else {
            return Ok(());
        };
        if !Ac::IS_ACCUM && msnap.is_all() {
            node.set_fuse_face(Arc::new(apply_vec_face(&u_node, &f)) as Arc<dyn Any + Send + Sync>);
        }
        install_apply_vec_hook(&node, &u_node, f, accum, msnap, w_old_cap, replace);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NoAccum;
    use crate::algebra::unary::{unary_fn, Cast, Minv};
    use crate::error::Error;
    use crate::mask::NoMask;

    #[test]
    fn fig3_line57_nspinv() {
        // GrB_apply(&nspinv, NULL, NULL, GrB_MINV_FP32, numsp, NULL)
        let ctx = Context::blocking();
        let numsp = Matrix::from_tuples(2, 2, &[(0, 0, 2.0f32), (1, 1, 4.0)]).unwrap();
        let nspinv = Matrix::<f32>::new(2, 2).unwrap();
        ctx.apply_matrix(
            &nspinv,
            NoMask,
            NoAccum,
            Minv::new(),
            &numsp,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            nspinv.extract_tuples().unwrap(),
            vec![(0, 0, 0.5), (1, 1, 0.25)]
        );
    }

    #[test]
    fn fig3_line41_bool_cast() {
        // sigmas[d] = (Boolean) frontier
        let ctx = Context::blocking();
        let frontier = Matrix::from_tuples(2, 2, &[(0, 1, 7i32)]).unwrap();
        let sigma = Matrix::<bool>::new(2, 2).unwrap();
        ctx.apply_matrix(
            &sigma,
            NoMask,
            NoAccum,
            Cast::<i32, bool>::new(),
            &frontier,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(sigma.extract_tuples().unwrap(), vec![(0, 1, true)]);
    }

    #[test]
    fn apply_transposed_input() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(1, 2, 5)]).unwrap();
        let c = Matrix::<i32>::new(3, 2).unwrap();
        ctx.apply_matrix(
            &c,
            NoMask,
            NoAccum,
            unary_fn(|x: &i32| x * 10),
            &a,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(2, 1, 50)]);
    }

    #[test]
    fn apply_vector_masked() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[1, 2, 3]).unwrap();
        let w = Vector::from_tuples(3, &[(0, 100)]).unwrap();
        let mask = Vector::from_tuples(3, &[(1, true)]).unwrap();
        ctx.apply_vector(
            &w,
            &mask,
            NoAccum,
            unary_fn(|x: &i32| -x),
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        // merge mode: (1) admitted -> -2; (0) not admitted -> old 100 kept
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 100), (1, -2)]);
    }

    #[test]
    fn shape_mismatch() {
        let ctx = Context::blocking();
        let a = Matrix::<i32>::new(2, 3).unwrap();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(
            ctx.apply_matrix(
                &c,
                NoMask,
                NoAccum,
                Minv::<i32>::new(),
                &a,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
