//! `GrB_apply` (Table II): `C<Mask> ⊙= F_u(A)` / `w<mask> ⊙= F_u(u)`.

use crate::accum::Accumulate;
use crate::algebra::unary::UnaryOp;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::kernel::apply::{apply_matrix, apply_vector};
use crate::kernel::write::{write_matrix, write_vector};
use crate::object::mask_arg::{MatrixMask, VectorMask};
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, effective_dims};
use crate::scalar::Scalar;

impl Context {
    /// `GrB_apply` (matrix): apply a unary operator to every stored
    /// element; pattern preserved.
    pub fn apply_matrix<D1, D2, F, Ac, Mk>(
        &self,
        c: &Matrix<D2>,
        mask: Mk,
        accum: Ac,
        f: F,
        a: &Matrix<D1>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        F: UnaryOp<D1, D2>,
        Ac: Accumulate<D2>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let da = effective_dims(a, tr_a);
        dim_check(c.shape() == da, || {
            format!("apply output is {:?} but input is {da:?}", c.shape())
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.snapshot();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let c_old = c_old_cap.storage()?;
            let mcsr = msnap.materialize()?;
            let t = apply_matrix(&a_st, &f);
            let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_matrix("apply", c, deps, Box::new(eval))
    }

    /// `GrB_apply` (vector).
    pub fn apply_vector<D1, D2, F, Ac, Mk>(
        &self,
        w: &Vector<D2>,
        mask: Mk,
        accum: Ac,
        f: F,
        u: &Vector<D1>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        F: UnaryOp<D1, D2>,
        Ac: Accumulate<D2>,
        Mk: VectorMask,
    {
        dim_check(w.size() == u.size(), || {
            format!("apply output is {} but input is {}", w.size(), u.size())
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let u_node = u.snapshot();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let u_st = u_node.ready_storage()?;
            let w_old = w_old_cap.storage()?;
            let mvec = msnap.materialize()?;
            let t = apply_vector(&u_st, &f);
            let out = write_vector(&w_old, t, &accum, &mvec, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_vector("apply", w, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NoAccum;
    use crate::algebra::unary::{unary_fn, Cast, Minv};
    use crate::error::Error;
    use crate::mask::NoMask;

    #[test]
    fn fig3_line57_nspinv() {
        // GrB_apply(&nspinv, NULL, NULL, GrB_MINV_FP32, numsp, NULL)
        let ctx = Context::blocking();
        let numsp = Matrix::from_tuples(2, 2, &[(0, 0, 2.0f32), (1, 1, 4.0)]).unwrap();
        let nspinv = Matrix::<f32>::new(2, 2).unwrap();
        ctx.apply_matrix(
            &nspinv,
            NoMask,
            NoAccum,
            Minv::new(),
            &numsp,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            nspinv.extract_tuples().unwrap(),
            vec![(0, 0, 0.5), (1, 1, 0.25)]
        );
    }

    #[test]
    fn fig3_line41_bool_cast() {
        // sigmas[d] = (Boolean) frontier
        let ctx = Context::blocking();
        let frontier = Matrix::from_tuples(2, 2, &[(0, 1, 7i32)]).unwrap();
        let sigma = Matrix::<bool>::new(2, 2).unwrap();
        ctx.apply_matrix(
            &sigma,
            NoMask,
            NoAccum,
            Cast::<i32, bool>::new(),
            &frontier,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(sigma.extract_tuples().unwrap(), vec![(0, 1, true)]);
    }

    #[test]
    fn apply_transposed_input() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(1, 2, 5)]).unwrap();
        let c = Matrix::<i32>::new(3, 2).unwrap();
        ctx.apply_matrix(
            &c,
            NoMask,
            NoAccum,
            unary_fn(|x: &i32| x * 10),
            &a,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(2, 1, 50)]);
    }

    #[test]
    fn apply_vector_masked() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[1, 2, 3]).unwrap();
        let w = Vector::from_tuples(3, &[(0, 100)]).unwrap();
        let mask = Vector::from_tuples(3, &[(1, true)]).unwrap();
        ctx.apply_vector(
            &w,
            &mask,
            NoAccum,
            unary_fn(|x: &i32| -x),
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        // merge mode: (1) admitted -> -2; (0) not admitted -> old 100 kept
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 100), (1, -2)]);
    }

    #[test]
    fn shape_mismatch() {
        let ctx = Context::blocking();
        let a = Matrix::<i32>::new(2, 3).unwrap();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(
            ctx.apply_matrix(
                &c,
                NoMask,
                NoAccum,
                Minv::<i32>::new(),
                &a,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
