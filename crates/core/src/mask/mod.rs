//! Write masks (paper, Section III-C).
//!
//! A mask has *structure* but no values: it is the set of positions at
//! which an operation may write its output. Any matrix or vector whose
//! domain casts to Boolean can serve as a mask — a stored element belongs
//! to the mask structure iff its value casts to `true` (Figure 2: "the
//! elements of the boolean write mask that exist and are true"), or
//! unconditionally under the `GrB_STRUCTURE` descriptor extension.
//! The `GrB_SCMP` descriptor selects the *structural complement*
//! `L(¬M) = {(i,j) : (i,j) ∉ L(M)}`.
//!
//! This module holds the kernel-facing evaluated form ([`MaskCsr`],
//! [`MaskVec`]): an effective pattern plus a complement flag. The
//! complement is never materialized (it is dense); membership tests fold
//! the flag in.

use crate::index::Index;
use crate::scalar::AsBool;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Marker for "no mask supplied" (`Mask = GrB_NULL`): every position of
/// the output is admitted.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMask;

/// A structure-only pattern: CSR over the unit type.
pub type Pattern = Csr<()>;
/// A structure-only 1D pattern.
pub type VecPattern = SparseVec<()>;

/// A fully evaluated two-dimensional mask, as consumed by kernels and the
/// masked-write stage.
#[derive(Debug, Clone)]
pub enum MaskCsr {
    /// No mask: all positions admitted.
    All,
    /// Admit positions in (or, if `complement`, not in) `pattern`.
    Pattern { pattern: Pattern, complement: bool },
}

impl MaskCsr {
    /// Evaluate a mask from a Boolean-castable matrix, applying the
    /// descriptor's `STRUCTURE` and `SCMP` options.
    pub fn from_csr<M: AsBool>(m: &Csr<M>, structural: bool, complement: bool) -> MaskCsr {
        let pattern = if structural {
            m.map(|_| ())
        } else {
            m.filter(|_, _, v| v.as_bool()).map(|_| ())
        };
        MaskCsr::Pattern {
            pattern,
            complement,
        }
    }

    /// `true` when every position is admitted (fast-path check).
    pub fn admits_all(&self) -> bool {
        matches!(self, MaskCsr::All)
    }

    /// Membership test for a single position.
    pub fn admits(&self, i: Index, j: Index) -> bool {
        match self {
            MaskCsr::All => true,
            MaskCsr::Pattern {
                pattern,
                complement,
            } => pattern.get(i, j).is_some() != *complement,
        }
    }

    /// Row view for merge kernels.
    pub fn row(&self, i: Index) -> MaskRow<'_> {
        match self {
            MaskCsr::All => MaskRow {
                cols: None,
                complement: false,
            },
            MaskCsr::Pattern {
                pattern,
                complement,
            } => MaskRow {
                cols: Some(pattern.row(i).0),
                complement: *complement,
            },
        }
    }
}

/// One row of an evaluated 2D mask (or the whole of a 1D mask).
#[derive(Debug, Clone, Copy)]
pub struct MaskRow<'a> {
    /// Sorted admitted (or, under complement, excluded) columns; `None`
    /// means "no mask" (everything admitted).
    cols: Option<&'a [Index]>,
    complement: bool,
}

impl<'a> MaskRow<'a> {
    /// A row that admits everything.
    pub fn all() -> MaskRow<'static> {
        MaskRow {
            cols: None,
            complement: false,
        }
    }

    /// Build from a sorted pattern slice.
    pub fn from_cols(cols: &'a [Index], complement: bool) -> MaskRow<'a> {
        MaskRow {
            cols: Some(cols),
            complement,
        }
    }

    /// Membership test (binary search; O(log nnz(row))).
    #[inline]
    pub fn admits(&self, j: Index) -> bool {
        match self.cols {
            None => true,
            Some(cols) => cols.binary_search(&j).is_ok() != self.complement,
        }
    }

    /// `true` if no position in this row can be admitted (empty pattern,
    /// not complemented — lets kernels skip the row entirely).
    #[inline]
    pub fn admits_nothing(&self) -> bool {
        match self.cols {
            None => false,
            Some(cols) => cols.is_empty() && !self.complement,
        }
    }

    /// `true` if every position in this row is admitted.
    #[inline]
    pub fn admits_everything(&self) -> bool {
        match self.cols {
            None => true,
            Some(cols) => cols.is_empty() && self.complement,
        }
    }

    /// The underlying sorted pattern and complement flag
    /// (`None` pattern = admit all).
    pub fn raw(&self) -> (Option<&'a [Index]>, bool) {
        (self.cols, self.complement)
    }

    /// Scatter admissibility into a dense Boolean workspace (used by the
    /// random-access SpGEMM kernel). `workspace` must be at least the row
    /// width and all-`false` on entry for the non-complement case; entries
    /// touched are recorded so the caller can reset them.
    ///
    /// Returns the complement flag the caller must XOR against lookups:
    /// `admitted(j) = workspace[j] != returned_flag`.
    pub fn scatter(&self, workspace: &mut [bool], touched: &mut Vec<Index>) -> bool {
        if let Some(cols) = self.cols {
            for &j in cols {
                if !workspace[j] {
                    workspace[j] = true;
                    touched.push(j);
                }
            }
        }
        match self.cols {
            None => true, // workspace all false, admitted = !false != ... => with flag true: false != true = true
            Some(_) => self.complement,
        }
    }
}

/// A fully evaluated one-dimensional mask.
#[derive(Debug, Clone)]
pub enum MaskVec {
    All,
    Pattern {
        indices: Vec<Index>,
        complement: bool,
    },
}

impl MaskVec {
    /// Evaluate from a Boolean-castable vector.
    pub fn from_vec<M: AsBool>(m: &SparseVec<M>, structural: bool, complement: bool) -> MaskVec {
        let indices: Vec<Index> = m
            .iter()
            .filter(|(_, v)| structural || v.as_bool())
            .map(|(i, _)| i)
            .collect();
        MaskVec::Pattern {
            indices,
            complement,
        }
    }

    pub fn admits_all(&self) -> bool {
        matches!(self, MaskVec::All)
    }

    pub fn admits(&self, i: Index) -> bool {
        match self {
            MaskVec::All => true,
            MaskVec::Pattern {
                indices,
                complement,
            } => indices.binary_search(&i).is_ok() != *complement,
        }
    }

    /// View as a [`MaskRow`] for the shared merge kernels.
    pub fn as_row(&self) -> MaskRow<'_> {
        match self {
            MaskVec::All => MaskRow::all(),
            MaskVec::Pattern {
                indices,
                complement,
            } => MaskRow::from_cols(indices, *complement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::csr::Csr;

    fn mask_src() -> Csr<i32> {
        // values: stored-but-false entries (0) are NOT mask members unless
        // structural
        Csr::from_sorted_tuples(2, 4, vec![(0, 1, 1), (0, 2, 0), (1, 0, 7)])
    }

    #[test]
    fn value_mode_drops_stored_falses() {
        let m = MaskCsr::from_csr(&mask_src(), false, false);
        assert!(m.admits(0, 1));
        assert!(!m.admits(0, 2)); // stored 0 casts to false
        assert!(m.admits(1, 0));
        assert!(!m.admits(1, 3));
    }

    #[test]
    fn structural_mode_keeps_stored_falses() {
        let m = MaskCsr::from_csr(&mask_src(), true, false);
        assert!(m.admits(0, 2));
        assert!(!m.admits(0, 0));
    }

    #[test]
    fn complement_is_structural_complement() {
        // L(¬m) = all positions not in L(m) — paper §III-C
        let m = MaskCsr::from_csr(&mask_src(), false, true);
        assert!(!m.admits(0, 1));
        assert!(m.admits(0, 2)); // stored false -> not a member -> complement admits
        assert!(m.admits(0, 0));
        assert!(!m.admits(1, 0));
    }

    #[test]
    fn complement_partitions_positions() {
        let plain = MaskCsr::from_csr(&mask_src(), false, false);
        let comp = MaskCsr::from_csr(&mask_src(), false, true);
        for i in 0..2 {
            for j in 0..4 {
                assert_ne!(plain.admits(i, j), comp.admits(i, j));
            }
        }
    }

    #[test]
    fn no_mask_admits_everything() {
        let m = MaskCsr::All;
        assert!(m.admits_all());
        assert!(m.admits(5, 9));
        assert!(m.row(0).admits(3));
    }

    #[test]
    fn mask_row_queries() {
        let m = MaskCsr::from_csr(&mask_src(), false, false);
        let r0 = m.row(0);
        assert!(r0.admits(1));
        assert!(!r0.admits(2));
        assert!(!r0.admits_nothing());
        let r_empty = MaskCsr::from_csr(&Csr::<bool>::empty(2, 2), false, false);
        assert!(r_empty.row(0).admits_nothing());
        let r_full = MaskCsr::from_csr(&Csr::<bool>::empty(2, 2), false, true);
        assert!(r_full.row(1).admits_everything());
    }

    #[test]
    fn scatter_semantics() {
        let m = MaskCsr::from_csr(&mask_src(), false, false);
        let mut ws = vec![false; 4];
        let mut touched = Vec::new();
        let flag = m.row(0).scatter(&mut ws, &mut touched);
        // admitted(j) = ws[j] != flag
        assert!(ws[1] != flag); // admitted
        assert!(ws[3] == flag); // not admitted
        assert_eq!(touched, vec![1]);

        // complemented
        let mc = MaskCsr::from_csr(&mask_src(), false, true);
        let mut ws = vec![false; 4];
        let mut touched = Vec::new();
        let flag = mc.row(0).scatter(&mut ws, &mut touched);
        assert!(ws[1] == flag);
        assert!(ws[3] != flag);
    }

    #[test]
    fn vector_masks() {
        let v = SparseVec::from_sorted_parts(5, vec![1, 3], vec![true, false]);
        let m = MaskVec::from_vec(&v, false, false);
        assert!(m.admits(1));
        assert!(!m.admits(3)); // stored false
        assert!(!m.admits(0));
        let ms = MaskVec::from_vec(&v, true, false);
        assert!(ms.admits(3));
        let mc = MaskVec::from_vec(&v, false, true);
        assert!(!mc.admits(1));
        assert!(mc.admits(0));
        assert!(MaskVec::All.admits(4));
    }
}
