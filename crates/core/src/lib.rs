//! # graphblas-core
//!
//! A Rust implementation of the GraphBLAS, reproducing *Design of the
//! GraphBLAS API for C* (Buluç, Mattson, McMillan, Moreira, Yang — 2017).
//!
//! The GraphBLAS standardizes linear-algebraic building blocks for graph
//! computations: sparse matrices and vectors over arbitrary *domains*,
//! combined through user-selectable *semirings*, with *masks*,
//! *accumulators*, and *descriptors* controlling every operation.
//!
//! ## Layout
//!
//! * [`algebra`] — operators, monoids, semirings (paper §III-B, Table I/IV)
//! * [`object`] — the opaque collections [`Matrix`] and [`Vector`] (§III-A)
//! * [`mask`], [`descriptor`], [`accum`] — the control objects (§III-C)
//! * [`op`] — the fundamental operations of Table II (mxm, mxv, vxm,
//!   eWiseMult, eWiseAdd, reduce, apply, transpose, extract, assign)
//! * [`exec`] — the execution model: blocking / nonblocking contexts,
//!   `wait`, deferred evaluation (§IV) and the error model (§V)
//! * [`storage`], [`kernel`] — the sparse substrate (CSR/COO storage and
//!   the SpGEMM / SpMV / merge kernels)
//!
//! ## Quickstart
//!
//! ```
//! use graphblas_core::prelude::*;
//!
//! let ctx = Context::blocking();
//! // 0 -> 1 -> 2, 0 -> 2
//! let a = Matrix::<f64>::from_tuples(3, 3,
//!     &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
//! let c = Matrix::<f64>::new(3, 3).unwrap();
//! // two-hop paths: C = A +.* A
//! ctx.mxm(&c, NoMask, NoAccum, plus_times::<f64>(), &a, &a,
//!         &Descriptor::default()).unwrap();
//! assert_eq!(c.get(0, 2).unwrap(), Some(1.0));
//! ```

pub mod accum;
pub mod algebra;
pub mod descriptor;
pub mod error;
pub mod exec;
pub mod index;
pub mod kernel;
pub mod mask;
pub mod object;
pub mod op;
pub mod scalar;
pub mod storage;

pub use accum::{Accum, NoAccum};
pub use descriptor::Descriptor;
pub use error::{Error, Result};
pub use exec::{
    pool_status, Context, FusePolicy, FusedNote, Mode, PoolStatus, SchedPolicy, TraceEvent,
};
pub use index::{Index, IndexSelection, ALL};
pub use kernel::par;
pub use kernel::spmspv;
pub use mask::NoMask;
pub use object::{Matrix, Vector};
pub use scalar::{AsBool, NumScalar, Scalar};
pub use storage::engine::{Format, FormatPolicy};
pub use storage::{snapshot_stats, DeltaStats, MatrixSnapshot, SnapshotStats, VectorSnapshot};

/// Convenient glob import: `use graphblas_core::prelude::*`.
pub mod prelude {
    pub use crate::accum::{Accum, NoAccum};
    pub use crate::algebra::binary::{
        binary_fn, BinaryOp, First, LAnd, LOr, LXor, Max, Min, Minus, Pair, Plus, Second, Times,
    };
    pub use crate::algebra::indexop::{
        select_fn, Diag, IndexSelectOp, OffDiag, Tril, Triu, ValueEq, ValueGe, ValueGt, ValueLe,
        ValueLt, ValueNe,
    };
    pub use crate::algebra::monoid::{
        LAndMonoid, LOrMonoid, LXorMonoid, MaxMonoid, MinMonoid, Monoid, MonoidDef, PlusMonoid,
        TimesMonoid,
    };
    pub use crate::algebra::semiring::{
        lor_land, max_plus, min_first, min_max, min_plus, min_second, plus_first, plus_pair,
        plus_second, plus_times, union_intersect, xor_and, Semiring, SemiringDef,
    };
    pub use crate::algebra::set::SmallSet;
    pub use crate::algebra::unary::{
        unary_fn, Abs, Ainv, Cast, Identity, LNot, Minv, One, UnaryOp,
    };
    pub use crate::descriptor::Descriptor;
    pub use crate::error::{Error, Result};
    pub use crate::exec::{Context, FusePolicy, FusedNote, Mode, SchedPolicy, TraceEvent};
    pub use crate::index::{Index, IndexSelection, ALL};
    pub use crate::mask::NoMask;
    pub use crate::object::{Matrix, Vector};
    pub use crate::scalar::{AsBool, CastFrom, NumScalar, Scalar};
    pub use crate::storage::engine::{Format, FormatPolicy};
    pub use crate::storage::{
        snapshot_stats, DeltaStats, MatrixSnapshot, SnapshotStats, VectorSnapshot,
    };
}
