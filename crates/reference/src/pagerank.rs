//! Power-iteration PageRank baseline.

use crate::AdjGraph;

/// PageRank with damping factor `d`, iterated until the L1 change drops
/// below `tol` or `max_iters` is reached. Dangling-vertex mass is
/// redistributed uniformly. Returns `(ranks, iterations)`.
pub fn pagerank(g: &AdjGraph, d: f64, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.n;
    let out_deg: Vec<usize> = g.adj.iter().map(|l| l.len()).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for it in 1..=max_iters {
        let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| rank[v]).sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n {
            if out_deg[u] > 0 {
                let share = d * rank[u] / out_deg[u] as f64;
                for &v in &g.adj[u] {
                    next[v] += share;
                }
            }
        }
        let diff: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if diff < tol {
            return (rank, it);
        }
    }
    (rank, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_sum_to_one() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (r, _) = pagerank(&g, 0.85, 1e-12, 500);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (r, _) = pagerank(&g, 0.85, 1e-12, 500);
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_attracts_rank() {
        // everyone points at 3
        let g = AdjGraph::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let (r, _) = pagerank(&g, 0.85, 1e-12, 500);
        assert!(r[3] > r[0] * 2.0);
    }

    #[test]
    fn dangling_mass_redistributed() {
        // 0 -> 1, 1 dangles: ranks must still sum to 1
        let g = AdjGraph::from_edges(2, &[(0, 1)]);
        let (r, _) = pagerank(&g, 0.85, 1e-12, 500);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (_, iters) = pagerank(&g, 0.85, 1e-10, 500);
        assert!(iters > 0 && iters < 500);
    }
}
