//! Additional centrality/decomposition baselines: closeness centrality
//! (BFS per source) and k-core peeling (bucket-less iterative peel).

use std::collections::VecDeque;

use crate::AdjGraph;

/// Out-closeness `C(v) = (r - 1) / Σ d(v, t)` over vertices reachable
/// from `v`; 0 when nothing is reachable.
pub fn closeness_centrality(g: &AdjGraph) -> Vec<f64> {
    let n = g.n;
    let mut out = vec![0.0; n];
    let mut dist = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    for s in 0..n {
        dist.fill(usize::MAX);
        dist[s] = 0;
        q.clear();
        q.push_back(s);
        let mut reach = 0usize;
        let mut total = 0usize;
        while let Some(v) = q.pop_front() {
            for &w in &g.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    reach += 1;
                    total += dist[w];
                    q.push_back(w);
                }
            }
        }
        if reach > 0 && total > 0 {
            out[s] = reach as f64 / total as f64;
        }
    }
    out
}

/// Vertices of the k-core (treating the graph as undirected/symmetric),
/// by iterative peeling.
pub fn k_core_members(g: &AdjGraph, k: usize) -> Vec<usize> {
    let n = g.n;
    let mut deg: Vec<usize> = g.adj.iter().map(|l| l.len()).collect();
    let mut alive = vec![true; n];
    loop {
        let peel: Vec<usize> = (0..n).filter(|&v| alive[v] && deg[v] < k).collect();
        if peel.is_empty() {
            break;
        }
        for v in peel {
            alive[v] = false;
            for &w in &g.adj[v] {
                if alive[w] {
                    deg[w] = deg[w].saturating_sub(1);
                }
            }
            deg[v] = 0;
        }
    }
    (0..n).filter(|&v| alive[v] && deg[v] >= k).collect()
}

/// Core number per vertex.
pub fn core_numbers(g: &AdjGraph) -> Vec<usize> {
    let n = g.n;
    let mut core = vec![0usize; n];
    let mut k = 1usize;
    loop {
        let members = k_core_members(g, k);
        if members.is_empty() {
            return core;
        }
        for v in members {
            core[v] = k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> AdjGraph {
        let mut all = Vec::new();
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        AdjGraph::from_edges(n, &all)
    }

    #[test]
    fn closeness_path_center() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let c = closeness_centrality(&g);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_zero_for_sinks() {
        let g = AdjGraph::from_edges(2, &[(0, 1)]);
        let c = closeness_centrality(&g);
        assert_eq!(c[1], 0.0);
        assert!((c[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_core_triangle_with_tail() {
        let g = undirected(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(k_core_members(&g, 2), vec![0, 1, 2]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn star_collapses() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(k_core_members(&g, 2).is_empty());
        assert_eq!(core_numbers(&g), vec![1; 5]);
    }
}
