//! Brandes' betweenness centrality (Brandes 2001) — the paper's
//! reference \[9\], implemented the classic way: one BFS per source with a
//! stack-ordered backward accumulation. O(mn) on unweighted graphs.
//!
//! This is the oracle the GraphBLAS `BC_update` (Figure 3) is
//! cross-validated against, and the baseline of the Figure 3 benchmark.

use std::collections::VecDeque;

use crate::AdjGraph;

/// Betweenness centrality of every vertex, summed over the given source
/// vertices only (the "batched" quantity Figure 3's `BC_update`
/// computes: contributions of shortest paths *starting at* the batch).
pub fn brandes_batch(g: &AdjGraph, sources: &[usize]) -> Vec<f64> {
    let n = g.n;
    let mut bc = vec![0.0f64; n];
    // reusable per-source state
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for &s in sources {
        // reset
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            preds[v].clear();
        }
        order.clear();
        queue.clear();

        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &g.adj[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // backward accumulation in reverse BFS order
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    bc
}

/// Full betweenness centrality (all sources).
pub fn brandes(g: &AdjGraph) -> Vec<f64> {
    let all: Vec<usize> = (0..g.n).collect();
    brandes_batch(g, &all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn path_graph_centrality() {
        // 0 -> 1 -> 2 -> 3: interior vertices carry the through-paths
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // paths: 0->2 via 1; 0->3 via 1,2; 1->3 via 2 => bc(1)=2, bc(2)=2
        close(&brandes(&g), &[0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn undirected_star_center_carries_everything() {
        let mut edges = Vec::new();
        for v in 1..5 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = AdjGraph::from_edges(5, &edges);
        // every leaf pair's shortest path passes the center: 4*3 = 12
        let bc = brandes(&g);
        close(&bc, &[12.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn diamond_splits_credit() {
        // 0 -> {1, 2} -> 3: two equal shortest paths share the credit
        let g = AdjGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        close(&brandes(&g), &[0.0, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn batch_sums_to_full() {
        let g = AdjGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (4, 5), (0, 2)]);
        let full = brandes(&g);
        let part1 = brandes_batch(&g, &[0, 1, 2]);
        let part2 = brandes_batch(&g, &[3, 4, 5]);
        let summed: Vec<f64> = part1.iter().zip(&part2).map(|(a, b)| a + b).collect();
        close(&full, &summed);
    }

    #[test]
    fn disconnected_vertices_contribute_nothing() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let bc = brandes(&g);
        close(&bc, &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn cycle_symmetry() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = brandes(&g);
        // directed 4-cycle: all vertices equivalent
        assert!(bc.iter().all(|&x| (x - bc[0]).abs() < 1e-9));
        assert!(bc[0] > 0.0);
    }
}
