//! Connected components via union-find (treating edges as undirected).

use crate::AdjGraph;

struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Component label of every vertex; labels are the *minimum vertex id*
/// of the component (matching the min-semiring label-propagation
/// GraphBLAS algorithm, so results compare directly).
pub fn connected_components(g: &AdjGraph) -> Vec<usize> {
    let mut uf = UnionFind::new(g.n);
    for (u, l) in g.adj.iter().enumerate() {
        for &v in l {
            uf.union(u, v);
        }
    }
    // canonical min-id labels
    let mut min_label = vec![usize::MAX; g.n];
    for v in 0..g.n {
        let r = uf.find(v);
        min_label[r] = min_label[r].min(v);
    }
    (0..g.n).map(|v| min_label[uf.find(v)]).collect()
}

/// Number of connected components.
pub fn num_components(g: &AdjGraph) -> usize {
    let labels = connected_components(g);
    let mut uniq: Vec<usize> = labels;
    uniq.sort_unstable();
    uniq.dedup();
    uniq.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let g = AdjGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 3, 3]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = AdjGraph::from_edges(3, &[]);
        assert_eq!(connected_components(&g), vec![0, 1, 2]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn direction_is_ignored() {
        let g = AdjGraph::from_edges(3, &[(2, 0)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn single_component_min_label() {
        let g = AdjGraph::from_edges(4, &[(3, 2), (2, 1), (1, 0)]);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 0]);
    }
}
