//! Classic queue-based breadth-first search baselines.

use std::collections::VecDeque;

use crate::AdjGraph;

/// BFS levels from `src`: `None` for unreachable vertices, `Some(0)` for
/// the source.
pub fn bfs_levels(g: &AdjGraph, src: usize) -> Vec<Option<usize>> {
    let mut level = vec![None; g.n];
    level[src] = Some(0);
    let mut q = VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        let next = level[v].expect("queued implies leveled") + 1;
        for &w in &g.adj[v] {
            if level[w].is_none() {
                level[w] = Some(next);
                q.push_back(w);
            }
        }
    }
    level
}

/// BFS parent tree from `src`: `parent[src] == Some(src)`; unreachable
/// vertices are `None`. Among equal-level parents the smallest-id parent
/// wins (deterministic, matching the min-semiring GraphBLAS variant).
pub fn bfs_parents(g: &AdjGraph, src: usize) -> Vec<Option<usize>> {
    let level = bfs_levels(g, src);
    let mut parent = vec![None; g.n];
    parent[src] = Some(src);
    // for determinism, scan vertices in id order per level
    for v in 0..g.n {
        if let Some(lv) = level[v] {
            for &w in &g.adj[v] {
                if level[w] == Some(lv + 1) {
                    let p = parent[w].get_or_insert(v);
                    if *p > v {
                        *p = v;
                    }
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> AdjGraph {
        AdjGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn levels() {
        assert_eq!(
            bfs_levels(&g(), 0),
            vec![Some(0), Some(1), Some(1), Some(2), Some(3), None]
        );
    }

    #[test]
    fn levels_from_interior() {
        assert_eq!(
            bfs_levels(&g(), 1),
            vec![None, Some(0), None, Some(1), Some(2), None]
        );
    }

    #[test]
    fn parents_prefer_smallest_id() {
        let p = bfs_parents(&g(), 0);
        assert_eq!(p[0], Some(0));
        assert_eq!(p[3], Some(1)); // both 1 and 2 valid; 1 < 2
        assert_eq!(p[4], Some(3));
        assert_eq!(p[5], None);
    }

    #[test]
    fn parent_tree_is_consistent_with_levels() {
        let g = g();
        let l = bfs_levels(&g, 0);
        let p = bfs_parents(&g, 0);
        for v in 0..g.n {
            match (l[v], p[v]) {
                (Some(0), Some(pv)) => assert_eq!(pv, v),
                (Some(lv), Some(pv)) => assert_eq!(l[pv], Some(lv - 1)),
                (None, None) => {}
                other => panic!("inconsistent at {v}: {other:?}"),
            }
        }
    }
}
