//! # graphblas-reference
//!
//! Classic, adjacency-list implementations of the graph algorithms the
//! GraphBLAS reproduction builds in the language of linear algebra —
//! the comparison baselines of the benchmark harness and the oracles of
//! the cross-validation tests:
//!
//! * [`bc::brandes`] — Brandes' betweenness centrality (the paper's
//!   reference \[9\] and the algorithm Figure 3 re-expresses);
//! * [`traversal::bfs_levels`] / [`traversal::bfs_parents`];
//! * [`paths::bellman_ford`] / [`paths::dijkstra`];
//! * [`triangles::triangle_count`] (node-iterator);
//! * [`pagerank::pagerank`];
//! * [`components::connected_components`] (union-find).
//!
//! No dependency on `graphblas-core`: these are deliberately independent
//! implementations.

pub mod bc;
pub mod centrality;
pub mod components;
pub mod pagerank;
pub mod paths;
pub mod traversal;
pub mod triangles;

/// An unweighted directed graph as sorted adjacency lists.
#[derive(Debug, Clone)]
pub struct AdjGraph {
    pub n: usize,
    pub adj: Vec<Vec<usize>>,
}

impl AdjGraph {
    /// Build from a directed edge list (duplicates removed).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        AdjGraph { n, adj }
    }

    /// Build from adjacency lists (sorted and deduped on entry).
    pub fn from_adjacency(adj: Vec<Vec<usize>>) -> Self {
        let n = adj.len();
        let mut adj = adj;
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        AdjGraph { n, adj }
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum()
    }

    /// The reverse graph.
    pub fn reversed(&self) -> AdjGraph {
        let mut adj = vec![Vec::new(); self.n];
        for (u, l) in self.adj.iter().enumerate() {
            for &v in l {
                adj[v].push(u);
            }
        }
        AdjGraph::from_adjacency(adj)
    }
}

/// A weighted directed graph as adjacency lists of `(neighbor, weight)`.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    pub n: usize,
    pub adj: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            adj[u].push((v, w));
        }
        for l in &mut adj {
            l.sort_unstable_by_key(|e| e.0);
        }
        WeightedGraph { n, adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = AdjGraph::from_edges(3, &[(0, 2), (0, 1), (0, 2), (2, 0)]);
        assert_eq!(g.adj[0], vec![1, 2]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn reversal() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert_eq!(r.adj[1], vec![0]);
        assert_eq!(r.adj[2], vec![1]);
        assert!(r.adj[0].is_empty());
    }

    #[test]
    fn weighted_build() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 2.5)]);
        assert_eq!(g.adj[0], vec![(1, 2.5)]);
    }
}
