//! Node-iterator triangle counting baseline (undirected simple graphs).

use crate::AdjGraph;

/// Number of triangles in an undirected graph (each undirected edge must
/// be present in both directions; self-loops ignored). Counts each
/// triangle once.
pub fn triangle_count(g: &AdjGraph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.n {
        for &v in &g.adj[u] {
            if v <= u {
                continue;
            }
            // intersect neighbor lists above v
            let (a, b) = (&g.adj[u], &g.adj[v]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Per-vertex triangle participation counts (each triangle adds 1 to
/// each of its three corners).
pub fn triangle_counts_per_vertex(g: &AdjGraph) -> Vec<u64> {
    let mut counts = vec![0u64; g.n];
    for u in 0..g.n {
        for &v in &g.adj[u] {
            if v <= u {
                continue;
            }
            let (a, b) = (&g.adj[u], &g.adj[v]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            counts[u] += 1;
                            counts[v] += 1;
                            counts[a[i]] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> AdjGraph {
        let mut all = Vec::new();
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        AdjGraph::from_edges(n, &all)
    }

    #[test]
    fn single_triangle() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(triangle_counts_per_vertex(&g), vec![1, 1, 1]);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(triangle_counts_per_vertex(&g), vec![3, 3, 3, 3]);
    }

    #[test]
    fn triangle_free() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // 4-cycle
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn shared_edge_triangles() {
        // two triangles sharing edge (0,1)
        let g = undirected(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]);
        assert_eq!(triangle_count(&g), 2);
        assert_eq!(triangle_counts_per_vertex(&g), vec![2, 2, 1, 1]);
    }
}
