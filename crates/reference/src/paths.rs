//! Shortest-path baselines: Bellman–Ford (matches the min-plus
//! GraphBLAS iteration step-for-step) and Dijkstra (the classic
//! comparator).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::WeightedGraph;

/// Single-source shortest path distances by Bellman–Ford; `None` for
/// unreachable vertices. Requires no negative cycles reachable from
/// `src` (returns `Err` if one is detected).
pub fn bellman_ford(g: &WeightedGraph, src: usize) -> Result<Vec<Option<f64>>, String> {
    let mut dist: Vec<Option<f64>> = vec![None; g.n];
    dist[src] = Some(0.0);
    for round in 0..g.n {
        let mut changed = false;
        for u in 0..g.n {
            if let Some(du) = dist[u] {
                for &(v, w) in &g.adj[u] {
                    let cand = du + w;
                    if dist[v].is_none_or(|dv| cand < dv) {
                        dist[v] = Some(cand);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == g.n - 1 {
            return Err("negative cycle reachable from source".into());
        }
    }
    Ok(dist)
}

#[derive(PartialEq)]
struct HeapItem(f64, usize);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap via reversed comparison on the distance
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// Single-source shortest path distances by Dijkstra; requires
/// non-negative weights.
pub fn dijkstra(g: &WeightedGraph, src: usize) -> Vec<Option<f64>> {
    let mut dist: Vec<Option<f64>> = vec![None; g.n];
    let mut heap = BinaryHeap::new();
    dist[src] = Some(0.0);
    heap.push(HeapItem(0.0, src));
    while let Some(HeapItem(d, u)) = heap.pop() {
        if dist[u].is_some_and(|du| d > du) {
            continue; // stale entry
        }
        for &(v, w) in &g.adj[u] {
            let cand = d + w;
            if dist[v].is_none_or(|dv| cand < dv) {
                dist[v] = Some(cand);
                heap.push(HeapItem(cand, v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> WeightedGraph {
        WeightedGraph::from_edges(
            5,
            &[
                (0, 1, 4.0),
                (0, 2, 1.0),
                (2, 1, 2.0),
                (1, 3, 1.0),
                (2, 3, 5.0),
            ],
        )
    }

    #[test]
    fn bellman_ford_distances() {
        let d = bellman_ford(&g(), 0).unwrap();
        assert_eq!(d, vec![Some(0.0), Some(3.0), Some(1.0), Some(4.0), None]);
    }

    #[test]
    fn dijkstra_agrees_with_bellman_ford() {
        let d1 = bellman_ford(&g(), 0).unwrap();
        let d2 = dijkstra(&g(), 0);
        assert_eq!(d1, d2);
    }

    #[test]
    fn negative_edges_ok_without_cycle() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 5.0), (1, 2, -3.0), (0, 2, 4.0)]);
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d[2], Some(2.0));
    }

    #[test]
    fn negative_cycle_detected() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 1.0), (1, 0, -2.0)]);
        assert!(bellman_ford(&g, 0).is_err());
    }

    #[test]
    fn unreachable_stays_none() {
        let g = WeightedGraph::from_edges(3, &[(1, 2, 1.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![Some(0.0), None, None]);
    }
}
