//! The paper's Figure 3 `BC_update`, transliterated statement by
//! statement against the C-style facade — optional arguments passed as
//! `None` (`GrB_NULL`), algebraic objects composed at runtime with
//! `GrbMonoid::new` / `GrbSemiring::new`, and the global
//! `init`/`finalize` lifecycle around the whole computation.

use graphblas_capi as grb;
use grb::{
    Descriptor, GrbBinaryOp, GrbMatrix, GrbMonoid, GrbSemiring, GrbType, GrbUnaryOp, GrbVector,
    Index, IndexSelection, Mode, Value, ALL,
};

/// Figure 3, lines 3–84.
fn bc_update(a: &GrbMatrix, s: &[Index]) -> grb::Result<GrbVector> {
    let nsver = s.len();
    let n = a.nrows(); // line 6
    let delta = GrbVector::new(GrbType::Fp32, n)?; // line 7

    // lines 9-12
    let int32_add = GrbMonoid::new(
        GrbBinaryOp::plus(GrbType::Int32)?, // GrB_PLUS_INT32
        Value::Int32(0),
    )?;
    let int32_add_mul = GrbSemiring::new(int32_add, GrbBinaryOp::times(GrbType::Int32)?)?;

    // lines 14-18
    let desc_tsr = Descriptor::default()
        .transpose_first() // GrB_INP0, GrB_TRAN
        .complement_mask() // GrB_MASK, GrB_SCMP
        .replace(); // GrB_OUTP, GrB_REPLACE

    // lines 20-29: numsp[s[i], i] = 1
    let i_nsver: Vec<Index> = (0..nsver).collect();
    let ones: Vec<Value> = vec![Value::Int32(1); nsver];
    let numsp = GrbMatrix::new(GrbType::Int32, n, nsver)?;
    numsp.build(s, &i_nsver, &ones, &GrbBinaryOp::plus(GrbType::Int32)?)?;

    // lines 31-33
    let frontier = GrbMatrix::new(GrbType::Int32, n, nsver)?;
    grb::extract_matrix(
        &frontier,
        Some(&numsp),
        None,
        a,
        ALL,
        IndexSelection::List(s),
        &desc_tsr,
    )?;

    // lines 36-46: forward sweep
    let mut sigmas: Vec<GrbMatrix> = Vec::new();
    let mut d = 0usize;
    loop {
        let sigma_d = GrbMatrix::new(GrbType::Bool, n, nsver)?; // line 40
        grb::apply_matrix(
            &sigma_d,
            None,
            None,
            &GrbUnaryOp::identity(GrbType::Bool), // GrB_IDENTITY_BOOL
            &frontier,
            &Descriptor::default(),
        )?; // line 41
        sigmas.push(sigma_d);
        grb::ewise_add_matrix(
            &numsp,
            None,
            None,
            &GrbBinaryOp::plus(GrbType::Int32)?,
            &numsp,
            &frontier,
            &Descriptor::default(),
        )?; // line 42
        grb::mxm(
            &frontier,
            Some(&numsp),
            None,
            &int32_add_mul,
            a,
            &frontier,
            &desc_tsr,
        )?; // line 43
        d += 1;
        if frontier.nvals()? == 0 {
            break; // lines 44-46
        }
    }

    // lines 48-53
    let fp32_add = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Fp32)?, Value::Fp32(0.0))?;
    let fp32_mul = GrbMonoid::new(GrbBinaryOp::times(GrbType::Fp32)?, Value::Fp32(1.0))?;
    let fp32_add_mul = GrbSemiring::new(fp32_add.clone(), GrbBinaryOp::times(GrbType::Fp32)?)?;

    // lines 55-57: nspinv = 1./numsp (MINV_FP32, implicit int cast)
    let nspinv = GrbMatrix::new(GrbType::Fp32, n, nsver)?;
    grb::apply_matrix(
        &nspinv,
        None,
        None,
        &GrbUnaryOp::minv(GrbType::Fp32)?,
        &numsp,
        &Descriptor::default(),
    )?;

    // lines 59-61: bcu filled with 1.0
    let bcu = GrbMatrix::new(GrbType::Fp32, n, nsver)?;
    grb::assign_scalar_matrix(
        &bcu,
        None,
        None,
        Value::Fp32(1.0),
        ALL,
        ALL,
        &Descriptor::default(),
    )?;

    // lines 63-65
    let desc_r = Descriptor::default().replace();

    // line 68
    let w = GrbMatrix::new(GrbType::Fp32, n, nsver)?;

    // the mxm at line 73 multiplies the INT32 adjacency by the FP32
    // workspace: operands cast implicitly, as in C
    let fp32_cast_semiring = fp32_add_mul.clone();

    // lines 69-75: tally phase
    for i in (1..d).rev() {
        grb::ewise_mult_matrix(
            &w,
            Some(&sigmas[i]),
            None,
            &GrbBinaryOp::times(GrbType::Fp32)?,
            &bcu,
            &nspinv,
            &desc_r,
        )?; // line 70
        grb::mxm(
            &w,
            Some(&sigmas[i - 1]),
            None,
            &fp32_cast_semiring,
            a,
            &w,
            &desc_r,
        )?; // line 73
        grb::ewise_mult_matrix(
            &bcu,
            None,
            Some(&GrbBinaryOp::plus(GrbType::Fp32)?),
            &GrbBinaryOp::times(GrbType::Fp32)?,
            &w,
            &numsp,
            &Descriptor::default(),
        )?; // line 74
    }
    let _ = fp32_mul; // declared as in the listing (line 50); unused here

    // line 77
    grb::assign_scalar_vector(
        &delta,
        None,
        None,
        Value::Fp32(-(nsver as f32)),
        ALL,
        &Descriptor::default(),
    )?;
    // line 78
    grb::reduce_rows(
        &delta,
        None,
        Some(&GrbBinaryOp::plus(GrbType::Fp32)?),
        &GrbMonoid::new(GrbBinaryOp::plus(GrbType::Fp32)?, Value::Fp32(0.0))?,
        &bcu,
        &Descriptor::default(),
    )?;

    Ok(delta) // line 83: GrB_SUCCESS
}

fn adjacency(n: usize, edges: &[(usize, usize)]) -> GrbMatrix {
    let a = GrbMatrix::new(GrbType::Int32, n, n).unwrap();
    let rows: Vec<Index> = edges.iter().map(|e| e.0).collect();
    let cols: Vec<Index> = edges.iter().map(|e| e.1).collect();
    let vals: Vec<Value> = vec![Value::Int32(1); edges.len()];
    a.build(
        &rows,
        &cols,
        &vals,
        &GrbBinaryOp::plus(GrbType::Int32).unwrap(),
    )
    .unwrap();
    a
}

fn bc_all(a: &GrbMatrix) -> Vec<f32> {
    let n = a.nrows();
    let sources: Vec<Index> = (0..n).collect();
    let delta = bc_update(a, &sources).unwrap();
    let mut out = vec![0.0f32; n];
    for (i, v) in delta.extract_tuples().unwrap() {
        if let Value::Fp32(x) = v {
            out[i] = x;
        }
    }
    out
}

fn assert_close(got: &[f32], want: &[f32]) {
    for (g, w) in got.iter().zip(want) {
        assert!((g - w).abs() < 1e-4, "{got:?} vs {want:?}");
    }
}

#[test]
fn figure3_bc_on_a_path() {
    grb::with_session(Mode::Blocking, || {
        let a = adjacency(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_close(&bc_all(&a), &[0.0, 2.0, 2.0, 0.0]);
    })
    .unwrap();
}

#[test]
fn figure3_bc_on_a_diamond() {
    grb::with_session(Mode::Blocking, || {
        let a = adjacency(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(&bc_all(&a), &[0.0, 0.5, 0.5, 0.0]);
    })
    .unwrap();
}

#[test]
fn figure3_bc_nonblocking_mode() {
    grb::with_session(Mode::Nonblocking, || {
        let a = adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 1)]);
        let got = bc_all(&a);
        grb::wait().unwrap();
        got
    })
    .and_then(|nb| {
        grb::with_session(Mode::Blocking, || {
            let a = adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 1)]);
            assert_close(&bc_all(&a), &nb);
        })
    })
    .unwrap();
}

#[test]
fn figure3_matches_typed_core_bc() {
    // the capi transliteration and the typed-core port must agree
    let edges = [(0usize, 1usize), (1, 2), (2, 0), (2, 3), (3, 4), (1, 4)];
    let capi_bc = grb::with_session(Mode::Blocking, || {
        let a = adjacency(5, &edges);
        bc_all(&a)
    })
    .unwrap();

    use graphblas_core::prelude::*;
    let ctx = Context::blocking();
    let tuples: Vec<(usize, usize, i32)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    let a = Matrix::from_tuples(5, 5, &tuples).unwrap();
    let typed = graphblas_algorithms::betweenness(&ctx, &a, 5).unwrap();
    assert_close(&capi_bc, &typed);
}
