//! The GraphBLAS operations with C-style dynamic arguments: optional
//! masks (`GrB_NULL`), optional accumulators, runtime-typed semirings
//! and operators, and runtime domain checking.
//!
//! Domain rules (the C API's, restricted to built-in domains): operand
//! values are implicitly cast to the operator's input domains; the
//! *output* collection's domain must equal the operation's result domain
//! (`GrB_DOMAIN_MISMATCH` otherwise); accumulators must accumulate in
//! the output domain.
//!
//! Every wrapper funnels through one dispatch path — the `dispatch!`
//! macro over an `OpArgs` bundle — which owns session acquisition +
//! API-error recording (`recorded`), the output-domain rule, accumulator
//! construction in the output's domain, and the expansion of the four
//! mask × accumulator argument combinations into the statically-typed
//! core call.

use graphblas_core::accum::{Accum, NoAccum};
use graphblas_core::descriptor::Descriptor;
use graphblas_core::error::Result;
use graphblas_core::exec::Context;
use graphblas_core::index::IndexSelection;
use graphblas_core::mask::NoMask;

use crate::collections::{GrbMatrix, GrbVector};
use crate::context::{ctx, record_api};
use crate::ops::{GrbBinaryOp, GrbMonoid, GrbSelectOp, GrbSemiring, GrbUnaryOp};
use crate::value::Value;

/// A GraphBLAS operation's C-style trailing arguments in one bundle:
/// the optional mask (`GrB_NULL` ⇒ `None`), the optional accumulator,
/// and the descriptor. `M` is the mask's collection type.
struct OpArgs<'a, M> {
    mask: Option<&'a M>,
    accum: Option<&'a GrbBinaryOp>,
    desc: &'a Descriptor,
}

/// Acquire the live session and run `body` with API-error recording —
/// the shared entry/exit path of every operation wrapper. A missing
/// session is returned unrecorded (there is nowhere to record it).
fn recorded<R>(body: impl FnOnce(&Context) -> Result<R>) -> Result<R> {
    let ctx = ctx()?;
    record_api(&ctx, || body(&ctx))
}

/// Expand the four mask × accumulator argument combinations into the
/// statically-typed core call.
macro_rules! with_mask_accum {
    ($mask:expr, $acc:expr, |$mk:ident, $ac:ident| $call:expr) => {
        match ($mask, $acc) {
            (None, None) => {
                let $mk = NoMask;
                let $ac = NoAccum;
                $call
            }
            (Some($mk), None) => {
                let $ac = NoAccum;
                $call
            }
            (None, Some(af)) => {
                let $mk = NoMask;
                let $ac = Accum(af);
                $call
            }
            (Some($mk), Some(af)) => {
                let $ac = Accum(af);
                $call
            }
        }
    };
}

/// The one dispatch path behind every masked, accumulated operation.
///
/// `$out.$inner` names the output handle and its typed core field; the
/// optional `: $dom, $label` clause is the output-domain rule (omitted
/// for scalar `assign`, where the scalar casts to the output's domain
/// instead); optional `pre …;` clauses run extra checks inside the
/// recorded region (e.g. `reduce_rows`' input-domain rule). The closure
/// receives the context, the mask/accumulator pair bound by
/// [`with_mask_accum!`], and the descriptor. The mask × accumulator
/// expansion has to stay a macro: the core methods are generic over
/// both, so the four combinations are four distinct monomorphizations.
macro_rules! dispatch {
    ($out:ident.$inner:ident $(: $dom:expr, $label:expr)?, $args:expr,
     $(pre $pre:expr;)*
     |$ctx:ident, $mk:ident, $ac:ident, $desc:ident| $call:expr) => {{
        let args = $args;
        recorded(|$ctx| {
            $($out.expect_domain($dom, $label)?;)?
            $($pre;)*
            let acc = args.accum.map(|f| f.accum_dyn($out.domain())).transpose()?;
            let $desc = args.desc;
            with_mask_accum!(args.mask.map(|m| &m.$inner), acc, |$mk, $ac| $call)
        })
    }};
}

/// `GrB_mxm(C, Mask, accum, op, A, B, desc)`.
pub fn mxm(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbSemiring,
    a: &GrbMatrix,
    b: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let s = op.casting_dyn();
    dispatch!(c.m: op.d3(), "output C", OpArgs { mask, accum, desc },
        pre a.domain().expect_castable_to(op.d1(), "input A")?;
        pre b.domain().expect_castable_to(op.d2(), "input B")?;
        |ctx, mk, ac, d| ctx.mxm(&c.m, mk, ac, s, &a.m, &b.m, d))
}

/// `GrB_mxv(w, mask, accum, op, A, u, desc)`.
pub fn mxv(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbSemiring,
    a: &GrbMatrix,
    u: &GrbVector,
    desc: &Descriptor,
) -> Result<()> {
    let s = op.casting_dyn();
    dispatch!(w.v: op.d3(), "output w", OpArgs { mask, accum, desc },
        pre a.domain().expect_castable_to(op.d1(), "input A")?;
        pre u.domain().expect_castable_to(op.d2(), "input u")?;
        |ctx, mk, ac, d| ctx.mxv(&w.v, mk, ac, s, &a.m, &u.v, d))
}

/// `GrB_vxm(w, mask, accum, op, u, A, desc)`.
pub fn vxm(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbSemiring,
    u: &GrbVector,
    a: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let s = op.casting_dyn();
    dispatch!(w.v: op.d3(), "output w", OpArgs { mask, accum, desc },
        pre u.domain().expect_castable_to(op.d1(), "input u")?;
        pre a.domain().expect_castable_to(op.d2(), "input A")?;
        |ctx, mk, ac, d| ctx.vxm(&w.v, mk, ac, s, &u.v, &a.m, d))
}

/// `GrB_eWiseAdd` (matrix).
pub fn ewise_add_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbBinaryOp,
    a: &GrbMatrix,
    b: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(c.m: op.d3, "output C", OpArgs { mask, accum, desc },
        pre a.domain().expect_castable_to(op.d1, "input A")?;
        pre b.domain().expect_castable_to(op.d2, "input B")?;
        |ctx, mk, ac, d| ctx.ewise_add_matrix(&c.m, mk, ac, f, &a.m, &b.m, d))
}

/// `GrB_eWiseMult` (matrix).
pub fn ewise_mult_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbBinaryOp,
    a: &GrbMatrix,
    b: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(c.m: op.d3, "output C", OpArgs { mask, accum, desc },
        pre a.domain().expect_castable_to(op.d1, "input A")?;
        pre b.domain().expect_castable_to(op.d2, "input B")?;
        |ctx, mk, ac, d| ctx.ewise_mult_matrix(&c.m, mk, ac, f, &a.m, &b.m, d))
}

/// `GrB_eWiseAdd` (vector).
pub fn ewise_add_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbBinaryOp,
    u: &GrbVector,
    v: &GrbVector,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(w.v: op.d3, "output w", OpArgs { mask, accum, desc },
        pre u.domain().expect_castable_to(op.d1, "input u")?;
        pre v.domain().expect_castable_to(op.d2, "input v")?;
        |ctx, mk, ac, d| ctx.ewise_add_vector(&w.v, mk, ac, f, &u.v, &v.v, d))
}

/// `GrB_eWiseMult` (vector).
pub fn ewise_mult_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbBinaryOp,
    u: &GrbVector,
    v: &GrbVector,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(w.v: op.d3, "output w", OpArgs { mask, accum, desc },
        pre u.domain().expect_castable_to(op.d1, "input u")?;
        pre v.domain().expect_castable_to(op.d2, "input v")?;
        |ctx, mk, ac, d| ctx.ewise_mult_vector(&w.v, mk, ac, f, &u.v, &v.v, d))
}

/// `GrB_apply` (matrix).
pub fn apply_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbUnaryOp,
    a: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(c.m: op.d2, "output C", OpArgs { mask, accum, desc },
        pre a.domain().expect_castable_to(op.d1, "input A")?;
        |ctx, mk, ac, d| ctx.apply_matrix(&c.m, mk, ac, f, &a.m, d))
}

/// `GrB_apply` (vector).
pub fn apply_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbUnaryOp,
    u: &GrbVector,
    desc: &Descriptor,
) -> Result<()> {
    let f = op.casting_dyn();
    dispatch!(w.v: op.d2, "output w", OpArgs { mask, accum, desc },
        pre u.domain().expect_castable_to(op.d1, "input u")?;
        |ctx, mk, ac, d| ctx.apply_vector(&w.v, mk, ac, f, &u.v, d))
}

/// `GrB_reduce` (matrix → vector): Fig. 3 line 78.
pub fn reduce_rows(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    monoid: &GrbMonoid,
    a: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let m = monoid.as_dyn();
    dispatch!(w.v: monoid.domain(), "output w", OpArgs { mask, accum, desc },
        pre a.expect_domain(monoid.domain(), "input A")?;
        |ctx, mk, ac, d| ctx.reduce_rows(&w.v, mk, ac, m, &a.m, d))
}

/// `GrB_reduce` (matrix → scalar).
pub fn reduce_matrix_scalar(monoid: &GrbMonoid, a: &GrbMatrix) -> Result<Value> {
    recorded(|ctx| {
        a.expect_domain(monoid.domain(), "input A")?;
        ctx.reduce_matrix_to_scalar(monoid.as_dyn(), &a.m)
    })
}

/// `GrB_reduce` (vector → scalar).
pub fn reduce_vector_scalar(monoid: &GrbMonoid, u: &GrbVector) -> Result<Value> {
    recorded(|ctx| {
        u.expect_domain(monoid.domain(), "input u")?;
        ctx.reduce_vector_to_scalar(monoid.as_dyn(), &u.v)
    })
}

/// `GrB_transpose`.
pub fn transpose(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    a: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(c.m: a.domain(), "output C", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.transpose(&c.m, mk, ac, &a.m, d))
}

/// `GrB_extract` (matrix): Fig. 3 line 33.
pub fn extract_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    a: &GrbMatrix,
    rows: IndexSelection<'_>,
    cols: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(c.m: a.domain(), "output C", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.extract_matrix(&c.m, mk, ac, &a.m, rows, cols, d))
}

/// `GrB_select` (matrix): keep stored elements passing the selector.
pub fn select_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbSelectOp,
    a: &GrbMatrix,
    desc: &Descriptor,
) -> Result<()> {
    let sel = op.clone();
    let f = graphblas_core::algebra::indexop::select_fn(move |i, j, v: &Value| sel.keep(i, j, v));
    dispatch!(c.m: a.domain(), "output C", OpArgs { mask, accum, desc },
        pre op.check_input_domain(a.domain())?;
        |ctx, mk, ac, d| ctx.select_matrix(&c.m, mk, ac, f, &a.m, d))
}

/// `GrB_select` (vector).
pub fn select_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    op: &GrbSelectOp,
    u: &GrbVector,
    desc: &Descriptor,
) -> Result<()> {
    let sel = op.clone();
    let f = graphblas_core::algebra::indexop::select_fn(move |i, j, v: &Value| sel.keep(i, j, v));
    dispatch!(w.v: u.domain(), "output w", OpArgs { mask, accum, desc },
        pre op.check_input_domain(u.domain())?;
        |ctx, mk, ac, d| ctx.select_vector(&w.v, mk, ac, f, &u.v, d))
}

/// `GrB_extract` (vector): `w<mask> ⊙= u(indices)`.
pub fn extract_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    u: &GrbVector,
    indices: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(w.v: u.domain(), "output w", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.extract_vector(&w.v, mk, ac, &u.v, indices, d))
}

/// `GrB_Col_extract`: `w<mask> ⊙= A(rows, j)`.
pub fn extract_col(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    a: &GrbMatrix,
    rows: IndexSelection<'_>,
    j: graphblas_core::index::Index,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(w.v: a.domain(), "output w", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.extract_col(&w.v, mk, ac, &a.m, rows, j, d))
}

/// `GrB_assign` (matrix): `C<Mask>(rows, cols) ⊙= A`.
pub fn assign_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    a: &GrbMatrix,
    rows: IndexSelection<'_>,
    cols: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(c.m: a.domain(), "output C", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.assign_matrix(&c.m, mk, ac, &a.m, rows, cols, d))
}

/// `GrB_assign` (vector): `w<mask>(indices) ⊙= u`.
pub fn assign_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    u: &GrbVector,
    indices: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(w.v: u.domain(), "output w", OpArgs { mask, accum, desc },
        |ctx, mk, ac, d| ctx.assign_vector(&w.v, mk, ac, &u.v, indices, d))
}

/// `GrB_assign` (matrix, scalar fill): Fig. 3 line 61. No output-domain
/// check — the scalar casts to the output's domain instead.
pub fn assign_scalar_matrix(
    c: &GrbMatrix,
    mask: Option<&GrbMatrix>,
    accum: Option<&GrbBinaryOp>,
    value: Value,
    rows: IndexSelection<'_>,
    cols: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(c.m, OpArgs { mask, accum, desc }, |ctx, mk, ac, d| ctx
        .assign_scalar_matrix(
            &c.m,
            mk,
            ac,
            value.try_cast_to(c.domain())?,
            rows,
            cols,
            d
        ))
}

/// `GrB_assign` (vector, scalar fill): Fig. 3 line 77.
pub fn assign_scalar_vector(
    w: &GrbVector,
    mask: Option<&GrbVector>,
    accum: Option<&GrbBinaryOp>,
    value: Value,
    indices: IndexSelection<'_>,
    desc: &Descriptor,
) -> Result<()> {
    dispatch!(w.v, OpArgs { mask, accum, desc }, |ctx, mk, ac, d| ctx
        .assign_scalar_vector(
            &w.v,
            mk,
            ac,
            value.try_cast_to(w.domain())?,
            indices,
            d
        ))
}

/// `GrB_Matrix_removeElement(C, i, j)`. Removing an element that is not
/// stored is a spec-conformant no-op; an out-of-bounds index is an API
/// error, recorded for `GrB_error()` like every other wrapper's.
pub fn matrix_remove_element(c: &GrbMatrix, i: usize, j: usize) -> Result<()> {
    recorded(|_ctx| c.remove(i, j))
}

/// `GrB_Vector_removeElement(w, i)`; see [`matrix_remove_element`].
pub fn vector_remove_element(w: &GrbVector, i: usize) -> Result<()> {
    recorded(|_ctx| w.remove(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::with_session;
    use crate::value::GrbType;
    use graphblas_core::error::Error;
    use graphblas_core::exec::Mode;
    use graphblas_core::index::ALL;

    fn int_matrix(n: usize, t: &[(usize, usize, i32)]) -> GrbMatrix {
        let m = GrbMatrix::new(GrbType::Int32, n, n).unwrap();
        let rows: Vec<usize> = t.iter().map(|x| x.0).collect();
        let cols: Vec<usize> = t.iter().map(|x| x.1).collect();
        let vals: Vec<Value> = t.iter().map(|x| Value::Int32(x.2)).collect();
        m.build(
            &rows,
            &cols,
            &vals,
            &GrbBinaryOp::plus(GrbType::Int32).unwrap(),
        )
        .unwrap();
        m
    }

    fn int32_semiring() -> GrbSemiring {
        let add =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap()
    }

    #[test]
    fn mxm_through_the_facade() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
            let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            mxm(
                &c,
                None,
                None,
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(c.get(0, 1).unwrap(), Some(Value::Int32(8)));
            assert_eq!(c.get(1, 1).unwrap(), Some(Value::Int32(9)));
        })
        .unwrap();
    }

    #[test]
    fn output_domain_mismatch_is_runtime_error() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(2, &[(0, 0, 1)]);
            let c = GrbMatrix::new(GrbType::Fp32, 2, 2).unwrap();
            let e = mxm(
                &c,
                None,
                None,
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap_err();
            assert!(matches!(e, Error::DomainMismatch(_)));
        })
        .unwrap();
    }

    #[test]
    fn operand_domains_cast_implicitly() {
        with_session(Mode::Blocking, || {
            // fp64 operand into an int32 semiring: C casts operands
            let a = GrbMatrix::new(GrbType::Fp64, 1, 1).unwrap();
            a.set(0, 0, Value::Fp64(2.9)).unwrap();
            let c = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
            mxm(
                &c,
                None,
                None,
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            // 2.9 casts to 2; 2*2 = 4
            assert_eq!(c.get(0, 0).unwrap(), Some(Value::Int32(4)));
        })
        .unwrap();
    }

    #[test]
    fn accumulator_domain_rule() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(1, &[(0, 0, 2)]);
            let c = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
            c.set(0, 0, Value::Int32(100)).unwrap();
            // fp32 accumulator cannot accumulate into int32 output
            let bad = GrbBinaryOp::plus(GrbType::Fp32).unwrap();
            let e = mxm(
                &c,
                None,
                Some(&bad),
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap_err();
            assert!(matches!(e, Error::DomainMismatch(_)));
            let good = GrbBinaryOp::plus(GrbType::Int32).unwrap();
            mxm(
                &c,
                None,
                Some(&good),
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(c.get(0, 0).unwrap(), Some(Value::Int32(104)));
        })
        .unwrap();
    }

    #[test]
    fn masked_ops_and_descriptor() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
            let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            let mask = int_matrix(2, &[(0, 1, 1)]);
            mxm(
                &c,
                Some(&mask),
                None,
                &int32_semiring(),
                &a,
                &a,
                &Descriptor::default().replace(),
            )
            .unwrap();
            assert_eq!(c.nvals().unwrap(), 1);
            assert_eq!(c.get(0, 1).unwrap(), Some(Value::Int32(10)));
        })
        .unwrap();
    }

    #[test]
    fn apply_and_reduce() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(2, &[(0, 0, 4), (1, 1, 9)]);
            // identity into bool = the Fig. 3 cast
            let b = GrbMatrix::new(GrbType::Bool, 2, 2).unwrap();
            apply_matrix(
                &b,
                None,
                None,
                &GrbUnaryOp::identity(GrbType::Bool),
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(b.get(1, 1).unwrap(), Some(Value::Bool(true)));

            let monoid =
                GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0))
                    .unwrap();
            assert_eq!(reduce_matrix_scalar(&monoid, &a).unwrap(), Value::Int32(13));
            let w = GrbVector::new(GrbType::Int32, 2).unwrap();
            reduce_rows(&w, None, None, &monoid, &a, &Descriptor::default()).unwrap();
            assert_eq!(w.get(0).unwrap(), Some(Value::Int32(4)));
        })
        .unwrap();
    }

    #[test]
    fn scalar_assign_fill() {
        with_session(Mode::Blocking, || {
            let c = GrbMatrix::new(GrbType::Fp32, 2, 3).unwrap();
            assign_scalar_matrix(
                &c,
                None,
                None,
                Value::Fp32(1.0),
                ALL,
                ALL,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(c.nvals().unwrap(), 6);
            let w = GrbVector::new(GrbType::Fp32, 4).unwrap();
            assign_scalar_vector(
                &w,
                None,
                None,
                Value::Fp32(-2.0),
                ALL,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(w.get(3).unwrap(), Some(Value::Fp32(-2.0)));
        })
        .unwrap();
    }

    #[test]
    fn extract_and_assign_vector_through_facade() {
        with_session(Mode::Blocking, || {
            let u = GrbVector::new(GrbType::Int32, 4).unwrap();
            for (i, v) in [(0, 10), (2, 20), (3, 30)] {
                u.set(i, Value::Int32(v)).unwrap();
            }
            let w = GrbVector::new(GrbType::Int32, 2).unwrap();
            extract_vector(
                &w,
                None,
                None,
                &u,
                IndexSelection::List(&[3, 1]),
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(w.extract_tuples().unwrap(), vec![(0, Value::Int32(30))]);

            let target = GrbVector::new(GrbType::Int32, 4).unwrap();
            assign_vector(
                &target,
                None,
                None,
                &w,
                IndexSelection::List(&[1, 2]),
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(
                target.extract_tuples().unwrap(),
                vec![(1, Value::Int32(30))]
            );
        })
        .unwrap();
    }

    #[test]
    fn assign_matrix_region_through_facade() {
        with_session(Mode::Blocking, || {
            let c = int_matrix(3, &[(0, 0, 1), (2, 2, 9)]);
            let a = GrbMatrix::new(GrbType::Int32, 1, 2).unwrap();
            a.set(0, 0, Value::Int32(7)).unwrap();
            assign_matrix(
                &c,
                None,
                None,
                &a,
                IndexSelection::List(&[1]),
                IndexSelection::List(&[0, 1]),
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(c.get(1, 0).unwrap(), Some(Value::Int32(7)));
            assert_eq!(c.get(0, 0).unwrap(), Some(Value::Int32(1)));
        })
        .unwrap();
    }

    #[test]
    fn extract_col_through_facade() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(3, &[(0, 1, 5), (2, 1, 6)]);
            let w = GrbVector::new(GrbType::Int32, 3).unwrap();
            extract_col(
                &w,
                None,
                None,
                &a,
                graphblas_core::index::ALL,
                1,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(
                w.extract_tuples().unwrap(),
                vec![(0, Value::Int32(5)), (2, Value::Int32(6))]
            );
        })
        .unwrap();
    }

    #[test]
    fn transpose_and_vxm_through_facade() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(2, &[(0, 1, 3)]);
            let t = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            transpose(&t, None, None, &a, &Descriptor::default()).unwrap();
            assert_eq!(t.get(1, 0).unwrap(), Some(Value::Int32(3)));

            let u = GrbVector::new(GrbType::Int32, 2).unwrap();
            u.set(0, Value::Int32(2)).unwrap();
            let w = GrbVector::new(GrbType::Int32, 2).unwrap();
            vxm(
                &w,
                None,
                None,
                &int32_semiring(),
                &u,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(w.extract_tuples().unwrap(), vec![(1, Value::Int32(6))]);
            let w2 = GrbVector::new(GrbType::Int32, 2).unwrap();
            mxv(
                &w2,
                None,
                None,
                &int32_semiring(),
                &t,
                &u,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(w2.extract_tuples().unwrap(), w.extract_tuples().unwrap());
        })
        .unwrap();
    }

    #[test]
    fn ewise_vector_variants_through_facade() {
        with_session(Mode::Blocking, || {
            let u = GrbVector::new(GrbType::Fp64, 3).unwrap();
            let v = GrbVector::new(GrbType::Fp64, 3).unwrap();
            u.set(0, Value::Fp64(1.0)).unwrap();
            u.set(1, Value::Fp64(2.0)).unwrap();
            v.set(1, Value::Fp64(10.0)).unwrap();
            v.set(2, Value::Fp64(20.0)).unwrap();
            let s = GrbVector::new(GrbType::Fp64, 3).unwrap();
            ewise_add_vector(
                &s,
                None,
                None,
                &GrbBinaryOp::plus(GrbType::Fp64).unwrap(),
                &u,
                &v,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(s.nvals().unwrap(), 3);
            let p = GrbVector::new(GrbType::Fp64, 3).unwrap();
            ewise_mult_vector(
                &p,
                None,
                None,
                &GrbBinaryOp::times(GrbType::Fp64).unwrap(),
                &u,
                &v,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(p.extract_tuples().unwrap(), vec![(1, Value::Fp64(20.0))]);
        })
        .unwrap();
    }

    #[test]
    fn remove_element_through_facade() {
        with_session(Mode::Blocking, || {
            let m = int_matrix(2, &[(0, 0, 1), (1, 1, 2)]);
            matrix_remove_element(&m, 0, 0).unwrap();
            // remove of an absent element: spec-conformant no-op
            matrix_remove_element(&m, 0, 1).unwrap();
            assert_eq!(m.nvals().unwrap(), 1);
            // out-of-bounds is an API error, mirrored into GrB_error()
            let e = matrix_remove_element(&m, 9, 0).unwrap_err();
            assert!(matches!(e, Error::InvalidIndex(_)));
            let detail = crate::context::error().expect("recorded");
            assert!(detail.contains("out of bounds"), "got {detail:?}");

            let u = GrbVector::new(GrbType::Int32, 3).unwrap();
            u.set(1, Value::Int32(7)).unwrap();
            vector_remove_element(&u, 1).unwrap();
            vector_remove_element(&u, 0).unwrap(); // absent: no-op
            assert_eq!(u.nvals().unwrap(), 0);
            assert!(matches!(
                vector_remove_element(&u, 5),
                Err(Error::InvalidIndex(_))
            ));
        })
        .unwrap();
    }

    #[test]
    fn reduce_vector_scalar_through_facade() {
        with_session(Mode::Blocking, || {
            let u = GrbVector::new(GrbType::Int32, 3).unwrap();
            u.set(0, Value::Int32(4)).unwrap();
            u.set(2, Value::Int32(5)).unwrap();
            let monoid =
                GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0))
                    .unwrap();
            assert_eq!(reduce_vector_scalar(&monoid, &u).unwrap(), Value::Int32(9));
        })
        .unwrap();
    }

    #[test]
    fn select_through_facade() {
        with_session(Mode::Blocking, || {
            let a = int_matrix(3, &[(0, 0, 1), (1, 0, 5), (0, 2, 7), (2, 2, 2)]);
            let l = GrbMatrix::new(GrbType::Int32, 3, 3).unwrap();
            select_matrix(
                &l,
                None,
                None,
                &GrbSelectOp::Tril(-1),
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(l.extract_tuples().unwrap(), vec![(1, 0, Value::Int32(5))]);
            let big = GrbMatrix::new(GrbType::Int32, 3, 3).unwrap();
            select_matrix(
                &big,
                None,
                None,
                &GrbSelectOp::ValueGt(Value::Int32(2)),
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(big.nvals().unwrap(), 2);

            let u = GrbVector::new(GrbType::Fp64, 3).unwrap();
            u.set(0, Value::Fp64(0.5)).unwrap();
            u.set(2, Value::Fp64(2.5)).unwrap();
            let w = GrbVector::new(GrbType::Fp64, 3).unwrap();
            select_vector(
                &w,
                None,
                None,
                &GrbSelectOp::ValueGe(Value::Fp64(1.0)),
                &u,
                &Descriptor::default(),
            )
            .unwrap();
            assert_eq!(w.extract_tuples().unwrap(), vec![(2, Value::Fp64(2.5))]);
        })
        .unwrap();
    }

    #[test]
    fn ops_require_initialization() {
        // hold the session lock so no other test's session is live
        let _guard = crate::context::session_lock();
        let a = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
        let e = mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        );
        assert!(matches!(e, Err(Error::UninitializedObject(_))));
    }
}
