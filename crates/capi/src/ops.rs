//! Runtime algebraic objects: `GrB_BinaryOp`, `GrB_UnaryOp`,
//! `GrB_Monoid`, `GrB_Semiring` as *values* carrying their domains —
//! exactly the C API's shape, with `GrB_DOMAIN_MISMATCH` raised at
//! construction or call time instead of at compile time.

use std::fmt;
use std::sync::Arc;

use graphblas_core::algebra::binary::BinaryOp;
use graphblas_core::algebra::monoid::Monoid;
use graphblas_core::algebra::semiring::{Semiring, SemiringDef};
use graphblas_core::algebra::unary::UnaryOp;
use graphblas_core::error::{Error, Result};
use graphblas_core::scalar::AsBool;

use crate::value::{GrbType, Value};

type BinFn = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;
type UnFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;

/// `GrB_BinaryOp`: `<D1, D2, D3, ⊙>` with runtime domains.
#[derive(Clone)]
pub struct GrbBinaryOp {
    pub name: &'static str,
    pub d1: GrbType,
    pub d2: GrbType,
    pub d3: GrbType,
    f: BinFn,
}

impl fmt::Debug for GrbBinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{},{},{}>",
            self.name,
            self.d1.c_name(),
            self.d2.c_name(),
            self.d3.c_name()
        )
    }
}

impl GrbBinaryOp {
    /// `GrB_BinaryOp_new`: a user-defined operator from a closure.
    pub fn new(
        name: &'static str,
        d1: GrbType,
        d2: GrbType,
        d3: GrbType,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        GrbBinaryOp {
            name,
            d1,
            d2,
            d3,
            f: Arc::new(f),
        }
    }

    // --- predefined operators (Table IV) ---

    /// `GrB_PLUS_T`.
    pub fn plus(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_PLUS", |a, b| a.add(b))
    }

    /// `GrB_MINUS_T`.
    pub fn minus(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_MINUS", |a, b| a.sub(b))
    }

    /// `GrB_TIMES_T`.
    pub fn times(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_TIMES", |a, b| a.mul(b))
    }

    /// `GrB_DIV_T`.
    pub fn div(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_DIV", |a, b| a.div(b))
    }

    /// `GrB_MIN_T`.
    pub fn min(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_MIN", |a, b| a.min_v(b))
    }

    /// `GrB_MAX_T`.
    pub fn max(ty: GrbType) -> Result<Self> {
        numeric_binop(ty, "GrB_MAX", |a, b| a.max_v(b))
    }

    /// `GrB_FIRST_T`.
    pub fn first(ty: GrbType) -> Self {
        GrbBinaryOp::new("GrB_FIRST", ty, ty, ty, |a, _| a.clone())
    }

    /// `GrB_SECOND_T`.
    pub fn second(ty: GrbType) -> Self {
        GrbBinaryOp::new("GrB_SECOND", ty, ty, ty, |_, b| b.clone())
    }

    /// `GrB_LAND`.
    pub fn land() -> Self {
        GrbBinaryOp::new(
            "GrB_LAND",
            GrbType::Bool,
            GrbType::Bool,
            GrbType::Bool,
            |a, b| Value::Bool(a.as_bool() && b.as_bool()),
        )
    }

    /// `GrB_LOR`.
    pub fn lor() -> Self {
        GrbBinaryOp::new(
            "GrB_LOR",
            GrbType::Bool,
            GrbType::Bool,
            GrbType::Bool,
            |a, b| Value::Bool(a.as_bool() || b.as_bool()),
        )
    }

    /// `GrB_LXOR`.
    pub fn lxor() -> Self {
        GrbBinaryOp::new(
            "GrB_LXOR",
            GrbType::Bool,
            GrbType::Bool,
            GrbType::Bool,
            |a, b| Value::Bool(a.as_bool() ^ b.as_bool()),
        )
    }

    /// `GrB_EQ_T` (returns `GrB_BOOL`).
    pub fn eq(ty: GrbType) -> Self {
        GrbBinaryOp::new("GrB_EQ", ty, ty, GrbType::Bool, |a, b| Value::Bool(a == b))
    }

    /// Adapter to the typed core.
    pub(crate) fn as_dyn(&self) -> DynBinary {
        DynBinary { f: self.f.clone() }
    }

    /// API check: this operator's input/output domains against actual
    /// argument domains.
    pub(crate) fn check_domains(&self, d1: GrbType, d2: GrbType, d3: GrbType) -> Result<()> {
        if (self.d1, self.d2, self.d3) != (d1, d2, d3) {
            return Err(Error::DomainMismatch(format!(
                "operator {self:?} applied to domains <{},{},{}>",
                d1.c_name(),
                d2.c_name(),
                d3.c_name()
            )));
        }
        Ok(())
    }
}

fn numeric_binop(
    ty: GrbType,
    name: &'static str,
    f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
) -> Result<GrbBinaryOp> {
    if !ty.is_numeric() {
        return Err(Error::DomainMismatch(format!(
            "{name} is not defined for {}",
            ty.c_name()
        )));
    }
    Ok(GrbBinaryOp::new(name, ty, ty, ty, f))
}

/// `GrB_UnaryOp`: `<D1, D2, f>` with runtime domains.
#[derive(Clone)]
pub struct GrbUnaryOp {
    pub name: &'static str,
    pub d1: GrbType,
    pub d2: GrbType,
    f: UnFn,
}

impl fmt::Debug for GrbUnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{:?},{:?}>", self.name, self.d1, self.d2)
    }
}

impl GrbUnaryOp {
    /// `GrB_UnaryOp_new`.
    pub fn new(
        name: &'static str,
        d1: GrbType,
        d2: GrbType,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        GrbUnaryOp {
            name,
            d1,
            d2,
            f: Arc::new(f),
        }
    }

    /// `GrB_IDENTITY_T` (the example's `GrB_IDENTITY_BOOL`, with the
    /// implicit input cast the paper relies on at Fig. 3 line 41).
    pub fn identity(ty: GrbType) -> Self {
        GrbUnaryOp::new("GrB_IDENTITY", ty, ty, move |x| x.cast_to(ty))
    }

    /// `GrB_MINV_T` (the example's `GrB_MINV_FP32`).
    pub fn minv(ty: GrbType) -> Result<Self> {
        if !ty.is_numeric() {
            return Err(Error::DomainMismatch(format!(
                "GrB_MINV is not defined for {ty:?}"
            )));
        }
        Ok(GrbUnaryOp::new("GrB_MINV", ty, ty, move |x| {
            x.cast_to(ty).map_f64(|v| 1.0 / v)
        }))
    }

    /// `GrB_AINV_T`.
    pub fn ainv(ty: GrbType) -> Result<Self> {
        if !ty.is_numeric() {
            return Err(Error::DomainMismatch(format!(
                "GrB_AINV is not defined for {ty:?}"
            )));
        }
        Ok(GrbUnaryOp::new("GrB_AINV", ty, ty, move |x| {
            let x = x.cast_to(ty);
            match x {
                // floats negate directly (preserves -0.0); integers
                // subtract from zero on the exact integer path — a
                // through-f64 negation would corrupt magnitudes > 2⁵³
                Value::Fp32(_) | Value::Fp64(_) => x.map_f64(|v| -v),
                _ => Value::zero_of(ty).sub(&x),
            }
        }))
    }

    /// `GrB_LNOT`.
    pub fn lnot() -> Self {
        GrbUnaryOp::new("GrB_LNOT", GrbType::Bool, GrbType::Bool, |x| {
            Value::Bool(!x.as_bool())
        })
    }

    /// Plain adapter (no input cast); the operation layer uses
    /// [`GrbUnaryOp::casting_dyn`] — this form is exercised by tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn as_dyn(&self) -> DynUnary {
        DynUnary { f: self.f.clone() }
    }
}

/// `GrB_IndexUnaryOp` as used by `GrB_select`: the predefined selector
/// family, carried as a runtime value (structural selectors ignore the
/// domain; value selectors compare after casting to f64, the C
/// comparison lattice for built-in domains).
#[derive(Debug, Clone)]
pub enum GrbSelectOp {
    /// `GrB_TRIL(k)`.
    Tril(i64),
    /// `GrB_TRIU(k)`.
    Triu(i64),
    /// `GrB_DIAG(k)`.
    Diag(i64),
    /// `GrB_OFFDIAG(k)`.
    OffDiag(i64),
    /// `GrB_VALUEGT(thunk)`.
    ValueGt(Value),
    /// `GrB_VALUEGE(thunk)`.
    ValueGe(Value),
    /// `GrB_VALUELT(thunk)`.
    ValueLt(Value),
    /// `GrB_VALUELE(thunk)`.
    ValueLe(Value),
    /// `GrB_VALUEEQ(thunk)`.
    ValueEq(Value),
    /// `GrB_VALUENE(thunk)`.
    ValueNe(Value),
}

impl GrbSelectOp {
    /// Value selectors compare on the f64 lattice, which is defined only
    /// for built-in domains; structural selectors never read the value.
    /// Rejecting user-defined domains here keeps `keep()`'s `as_f64`
    /// unreachable for them.
    pub(crate) fn check_input_domain(&self, d: GrbType) -> Result<()> {
        let thunk = match self {
            GrbSelectOp::Tril(_)
            | GrbSelectOp::Triu(_)
            | GrbSelectOp::Diag(_)
            | GrbSelectOp::OffDiag(_) => return Ok(()),
            GrbSelectOp::ValueGt(t)
            | GrbSelectOp::ValueGe(t)
            | GrbSelectOp::ValueLt(t)
            | GrbSelectOp::ValueLe(t)
            | GrbSelectOp::ValueEq(t)
            | GrbSelectOp::ValueNe(t) => t,
        };
        if d.is_udf() || thunk.type_of().is_udf() {
            return Err(Error::DomainMismatch(format!(
                "value selector compares {} against {} on the built-in \
                 numeric lattice; user-defined domains have no such order",
                d.c_name(),
                thunk.type_of().c_name()
            )));
        }
        Ok(())
    }

    pub(crate) fn keep(&self, i: usize, j: usize, v: &Value) -> bool {
        let (i, j) = (i as i64, j as i64);
        match self {
            GrbSelectOp::Tril(k) => j - i <= *k,
            GrbSelectOp::Triu(k) => j - i >= *k,
            GrbSelectOp::Diag(k) => j - i == *k,
            GrbSelectOp::OffDiag(k) => j - i != *k,
            GrbSelectOp::ValueGt(t) => v.as_f64() > t.as_f64(),
            GrbSelectOp::ValueGe(t) => v.as_f64() >= t.as_f64(),
            GrbSelectOp::ValueLt(t) => v.as_f64() < t.as_f64(),
            GrbSelectOp::ValueLe(t) => v.as_f64() <= t.as_f64(),
            GrbSelectOp::ValueEq(t) => v.as_f64() == t.as_f64(),
            GrbSelectOp::ValueNe(t) => v.as_f64() != t.as_f64(),
        }
    }
}

/// `GrB_Monoid`: a binary operator over one domain plus its identity
/// element (`GrB_Monoid_new`, Fig. 3 lines 10/49/51).
#[derive(Debug, Clone)]
pub struct GrbMonoid {
    pub op: GrbBinaryOp,
    pub identity: Value,
    /// Declared absorbing element, if any (`GxB_Monoid_terminal_new`):
    /// once a reduction's accumulator equals it, further folding cannot
    /// change the result and kernels may stop early.
    pub terminal: Option<Value>,
}

impl GrbMonoid {
    /// `GrB_Monoid_new(&monoid, domain, op, identity)` — rejects
    /// operators whose domains are not uniform or whose identity has the
    /// wrong domain (`GrB_DOMAIN_MISMATCH`).
    pub fn new(op: GrbBinaryOp, identity: Value) -> Result<Self> {
        if op.d1 != op.d2 || op.d2 != op.d3 {
            return Err(Error::DomainMismatch(format!(
                "monoid operator must have one domain, got {op:?}"
            )));
        }
        if identity.type_of() != op.d1 {
            return Err(Error::DomainMismatch(format!(
                "identity domain {} does not match monoid domain {}",
                identity.type_of().c_name(),
                op.d1.c_name()
            )));
        }
        Ok(GrbMonoid {
            op,
            identity,
            terminal: None,
        })
    }

    /// Declare an absorbing (terminal) element in the monoid's domain.
    pub fn with_terminal(mut self, terminal: Value) -> Result<Self> {
        if terminal.type_of() != self.domain() {
            return Err(Error::DomainMismatch(format!(
                "terminal domain {} does not match monoid domain {}",
                terminal.type_of().c_name(),
                self.domain().c_name()
            )));
        }
        self.terminal = Some(terminal);
        Ok(self)
    }

    pub fn domain(&self) -> GrbType {
        self.op.d1
    }

    pub(crate) fn as_dyn(&self) -> DynMonoid {
        DynMonoid {
            f: self.op.f.clone(),
            id: self.identity.clone(),
            term: self.terminal.clone(),
        }
    }
}

/// `GrB_Semiring`: `<add monoid, mul op>` (`GrB_Semiring_new`, Fig. 3
/// lines 12/53).
#[derive(Debug, Clone)]
pub struct GrbSemiring {
    pub add: GrbMonoid,
    pub mul: GrbBinaryOp,
}

impl GrbSemiring {
    /// `GrB_Semiring_new(&semiring, add_monoid, mul_op)` — the
    /// multiplicative output domain must be the additive domain.
    pub fn new(add: GrbMonoid, mul: GrbBinaryOp) -> Result<Self> {
        if mul.d3 != add.domain() {
            return Err(Error::DomainMismatch(format!(
                "⊗ output {} does not match ⊕ domain {}",
                mul.d3.c_name(),
                add.domain().c_name()
            )));
        }
        Ok(GrbSemiring { add, mul })
    }

    pub fn d1(&self) -> GrbType {
        self.mul.d1
    }

    pub fn d2(&self) -> GrbType {
        self.mul.d2
    }

    pub fn d3(&self) -> GrbType {
        self.mul.d3
    }

    pub(crate) fn as_dyn(&self) -> SemiringDef<DynMonoid, DynBinary> {
        SemiringDef::new(self.add.as_dyn(), self.mul.as_dyn())
    }

    /// Adapter that folds in the C API's implicit input casts: operand
    /// values are cast to the ⊗ domains before multiplication.
    pub(crate) fn casting_dyn(&self) -> SemiringDef<DynMonoid, DynBinary> {
        let (d1, d2) = (self.mul.d1, self.mul.d2);
        let f = self.mul.f.clone();
        SemiringDef::new(
            self.add.as_dyn(),
            DynBinary {
                f: Arc::new(move |x: &Value, y: &Value| f(&x.cast_to(d1), &y.cast_to(d2))),
            },
        )
    }
}

impl GrbBinaryOp {
    /// Adapter with implicit input casts to this operator's domains.
    pub(crate) fn casting_dyn(&self) -> DynBinary {
        let (d1, d2) = (self.d1, self.d2);
        let f = self.f.clone();
        DynBinary {
            f: Arc::new(move |x: &Value, y: &Value| f(&x.cast_to(d1), &y.cast_to(d2))),
        }
    }

    /// Adapter for use as an accumulator into an output of domain
    /// `out_ty`: requires `d1 == d3 == out_ty` (the C accumulation rule);
    /// the T-side operand is cast to `d2`.
    pub(crate) fn accum_dyn(&self, out_ty: GrbType) -> Result<DynBinary> {
        if self.d1 != out_ty || self.d3 != out_ty {
            return Err(Error::DomainMismatch(format!(
                "accumulator {self:?} cannot accumulate into domain {}",
                out_ty.c_name()
            )));
        }
        // The T-side operand the accumulator receives has the output's
        // domain; a user-defined d2 admits no implicit cast from it.
        out_ty.expect_castable_to(self.d2, "accumulator operand")?;
        Ok(self.casting_dyn())
    }
}

impl GrbUnaryOp {
    /// Adapter with the implicit input cast to `d1` (Fig. 3 line 41's
    /// `GrB_IDENTITY_BOOL` on an integer frontier).
    pub(crate) fn casting_dyn(&self) -> DynUnary {
        let d1 = self.d1;
        let f = self.f.clone();
        DynUnary {
            f: Arc::new(move |x: &Value| f(&x.cast_to(d1))),
        }
    }
}

// ----- adapters to the typed core over the Value domain -----

#[derive(Clone)]
pub(crate) struct DynBinary {
    f: BinFn,
}

impl BinaryOp<Value, Value, Value> for DynBinary {
    #[inline]
    fn apply(&self, x: &Value, y: &Value) -> Value {
        (self.f)(x, y)
    }
}

#[derive(Clone)]
pub(crate) struct DynMonoid {
    f: BinFn,
    id: Value,
    term: Option<Value>,
}

impl BinaryOp<Value, Value, Value> for DynMonoid {
    #[inline]
    fn apply(&self, x: &Value, y: &Value) -> Value {
        (self.f)(x, y)
    }
}

impl Monoid<Value> for DynMonoid {
    #[inline]
    fn identity(&self) -> Value {
        self.id.clone()
    }

    #[inline]
    fn is_terminal(&self, v: &Value) -> bool {
        self.term.as_ref().is_some_and(|t| t == v)
    }
}

#[derive(Clone)]
pub(crate) struct DynUnary {
    f: UnFn,
}

impl UnaryOp<Value, Value> for DynUnary {
    #[inline]
    fn apply(&self, x: &Value) -> Value {
        (self.f)(x)
    }
}

/// Quiet use of the semiring trait so the adapter stays honest.
#[allow(dead_code)]
fn assert_semiring_impl(s: &GrbSemiring) -> Value {
    Semiring::<Value, Value, Value>::zero(&s.as_dyn())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_operator_domains() {
        let p = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        assert_eq!(
            (p.d1, p.d2, p.d3),
            (GrbType::Int32, GrbType::Int32, GrbType::Int32)
        );
        assert_eq!(
            p.as_dyn().apply(&Value::Int32(2), &Value::Int32(3)),
            Value::Int32(5)
        );
        assert!(GrbBinaryOp::plus(GrbType::Bool).is_err()); // no GrB_PLUS_BOOL
    }

    #[test]
    fn monoid_construction_checks() {
        // Fig. 3 line 10: GrB_Monoid_new(&Int32Add, GrB_INT32, GrB_PLUS_INT32, 0)
        let m =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        assert_eq!(m.domain(), GrbType::Int32);
        assert_eq!(m.as_dyn().identity(), Value::Int32(0));
        // wrong identity domain
        let e = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Fp32(0.0))
            .unwrap_err();
        assert!(matches!(e, Error::DomainMismatch(_)));
        // non-uniform operator
        let eqop = GrbBinaryOp::eq(GrbType::Int32);
        assert!(GrbMonoid::new(eqop, Value::Bool(true)).is_err());
    }

    #[test]
    fn semiring_construction_checks() {
        // Fig. 3 line 12: GrB_Semiring_new(&Int32AddMul, Int32Add, GrB_TIMES_INT32)
        let add =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        let s = GrbSemiring::new(add.clone(), GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap();
        assert_eq!(s.d3(), GrbType::Int32);
        assert_eq!(assert_semiring_impl(&s), Value::Int32(0));
        // ⊗ output mismatch
        let e = GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Fp32).unwrap()).unwrap_err();
        assert!(matches!(e, Error::DomainMismatch(_)));
    }

    #[test]
    fn unary_ops() {
        let minv = GrbUnaryOp::minv(GrbType::Fp32).unwrap();
        assert_eq!(minv.as_dyn().apply(&Value::Fp32(4.0)), Value::Fp32(0.25));
        let id = GrbUnaryOp::identity(GrbType::Bool);
        // implicit cast of an int input to bool, as in Fig. 3 line 41
        assert_eq!(id.as_dyn().apply(&Value::Int32(7)), Value::Bool(true));
        assert!(GrbUnaryOp::minv(GrbType::Bool).is_err());
        assert_eq!(
            GrbUnaryOp::lnot().as_dyn().apply(&Value::Bool(false)),
            Value::Bool(true)
        );
        assert_eq!(
            GrbUnaryOp::ainv(GrbType::Int32)
                .unwrap()
                .as_dyn()
                .apply(&Value::Int32(5)),
            Value::Int32(-5)
        );
    }

    #[test]
    fn logical_and_comparison_ops() {
        assert_eq!(
            GrbBinaryOp::lxor()
                .as_dyn()
                .apply(&Value::Bool(true), &Value::Bool(true)),
            Value::Bool(false)
        );
        assert_eq!(
            GrbBinaryOp::eq(GrbType::Int32)
                .as_dyn()
                .apply(&Value::Int32(2), &Value::Int32(2)),
            Value::Bool(true)
        );
        assert_eq!(
            GrbBinaryOp::first(GrbType::Fp64)
                .as_dyn()
                .apply(&Value::Fp64(1.0), &Value::Fp64(2.0)),
            Value::Fp64(1.0)
        );
    }

    #[test]
    fn domain_check_helper() {
        let p = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        assert!(p
            .check_domains(GrbType::Int32, GrbType::Int32, GrbType::Int32)
            .is_ok());
        assert!(matches!(
            p.check_domains(GrbType::Int32, GrbType::Fp32, GrbType::Int32),
            Err(Error::DomainMismatch(_))
        ));
    }
}
