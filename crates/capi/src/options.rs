//! The unified `GxB_set` / `GxB_get` option surface (SuiteSparse-style
//! extension, the paper's §VI "implementation-defined descriptor and
//! option" latitude).
//!
//! One pair of entry points covers every runtime-tunable knob of this
//! binding, scoped the way the SuiteSparse extension scopes them:
//!
//! * [`GxbScope::Global`] — session-wide defaults: the format policy
//!   (and its tiled variant, the tile grid) newly created matrices
//!   inherit, the delta-log run cap, and the background flush window.
//! * [`GxbScope::Matrix`] — per-object storage control: the current
//!   format, the format policy for future values, the tile grid
//!   (set converts the stored value immediately), and the read-epoch
//!   probe.
//! * [`GxbScope::Vector`] — the read-epoch probe (vectors have a single
//!   sparse layout, so format options do not apply).
//!
//! The pre-existing convenience paths — the [`Config`](crate::Config)
//! builder's `delta_run_cap`/`flush_window_ms` fields and
//! [`GrbMatrix::set_format`]'s `GXB_FORMAT_*` hints — forward here, so
//! this dispatcher is the single implementation (and the **only**
//! public path to the tiling knobs: there is deliberately no
//! environment variable and no separate `set_tile_shape` method on the
//! handle).
//!
//! ```
//! use graphblas_capi as capi;
//! use capi::{gxb_get, gxb_set, GxbOption, GxbScope, GxbValue, Mode};
//!
//! capi::with_session(Mode::Blocking, || {
//!     let m = capi::GrbMatrix::new(capi::GrbType::Int32, 100, 100).unwrap();
//!     // shard into a 4x4 tile grid
//!     gxb_set(
//!         GxbScope::Matrix(&m),
//!         GxbOption::TileShape,
//!         GxbValue::TileShape(Some((4, 4))),
//!     )
//!     .unwrap();
//!     assert_eq!(
//!         gxb_get(GxbScope::Matrix(&m), GxbOption::TileShape).unwrap(),
//!         GxbValue::TileShape(Some((4, 4))),
//!     );
//! })
//! .unwrap();
//! ```

use graphblas_core::error::{Error, Result};
use graphblas_core::storage::engine;
use graphblas_core::storage::{delta, snapshot};
use graphblas_core::{Format, FormatPolicy};

use crate::collections::{GrbMatrix, GrbVector};

/// What a [`gxb_set`]/[`gxb_get`] call applies to: the session, one
/// matrix, or one vector.
#[derive(Debug, Clone, Copy)]
pub enum GxbScope<'a> {
    /// Session-wide defaults and storage-engine knobs.
    Global,
    /// One matrix handle's storage options.
    Matrix(&'a GrbMatrix),
    /// One vector handle's options.
    Vector(&'a GrbVector),
}

impl GxbScope<'_> {
    fn name(&self) -> &'static str {
        match self {
            GxbScope::Global => "Global",
            GxbScope::Matrix(_) => "Matrix",
            GxbScope::Vector(_) => "Vector",
        }
    }
}

/// The option field being set or read (the SuiteSparse `GxB_Option_Field`
/// analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GxbOption {
    /// The storage format. Matrix get: the layout currently holding the
    /// value (forces completion). Matrix set: pin to that layout,
    /// converting now. Global set: future matrices default to
    /// `FormatPolicy::Force(f)`.
    Format,
    /// The format policy applied to future computed values. Matrix
    /// scope sets the per-object policy; Global scope sets the default
    /// policy newly created matrices inherit.
    FormatPolicy,
    /// The 2D tile grid. `TileShape(Some((r, c)))` shards storage into
    /// an `r × c` grid of hypersparse-capable tiles (matrix scope
    /// converts the stored value immediately); `TileShape(None)` clears
    /// tiling back to automatic slab selection.
    TileShape,
    /// The pending-update tail-seal cap (global). `Count(None)` restores
    /// auto (`GRB_DELTA_RUN_CAP`, then the engine default).
    DeltaRunCap,
    /// The background auto-flush time window in milliseconds (global).
    /// `Millis(Some(0))` disables the time trigger; `Millis(None)`
    /// restores auto.
    FlushWindowMs,
    /// Get-only: the delta epoch a snapshot taken now would pin.
    ReadEpoch,
}

/// A typed option value (the `void *` of the C extension, made honest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GxbValue {
    /// A concrete storage format.
    Format(Format),
    /// A format policy.
    FormatPolicy(FormatPolicy),
    /// A tile grid, or `None` for "not tiled".
    TileShape(Option<(usize, usize)>),
    /// A positive count, or `None` for "auto".
    Count(Option<usize>),
    /// A millisecond window, or `None` for "auto".
    Millis(Option<u64>),
    /// A read epoch.
    Epoch(u64),
}

fn unsupported(scope: &GxbScope, option: GxbOption, verb: &str) -> Error {
    Error::InvalidValue(format!(
        "GxB_{verb}: option {option:?} is not supported at {} scope",
        scope.name()
    ))
}

fn type_mismatch(option: GxbOption, value: &GxbValue) -> Error {
    Error::InvalidValue(format!(
        "GxB_set: option {option:?} cannot take value {value:?}"
    ))
}

fn checked_grid(rows: usize, cols: usize) -> Result<FormatPolicy> {
    if rows == 0 || cols == 0 {
        return Err(Error::InvalidValue(format!(
            "GxB_set(TileShape): tile grid must be positive, got {rows}x{cols}"
        )));
    }
    if rows > u16::MAX as usize || cols > u16::MAX as usize {
        return Err(Error::InvalidValue(format!(
            "GxB_set(TileShape): tile grid {rows}x{cols} exceeds the {} per-axis maximum",
            u16::MAX
        )));
    }
    Ok(FormatPolicy::Tiled {
        rows: rows as u16,
        cols: cols as u16,
    })
}

/// `GxB_set(scope, option, value)`: write one option. See the
/// [module docs](self) for the supported (scope, option) pairs.
pub fn gxb_set(scope: GxbScope, option: GxbOption, value: GxbValue) -> Result<()> {
    match (&scope, option) {
        (GxbScope::Global, GxbOption::Format) => match value {
            GxbValue::Format(f) => {
                engine::set_session_default_policy(FormatPolicy::Force(f));
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Global, GxbOption::FormatPolicy) => match value {
            GxbValue::FormatPolicy(p) => {
                engine::set_session_default_policy(p);
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Global, GxbOption::TileShape) => match value {
            GxbValue::TileShape(Some((r, c))) => {
                engine::set_session_default_policy(checked_grid(r, c)?);
                Ok(())
            }
            GxbValue::TileShape(None) => {
                if engine::session_default_policy().tile_grid().is_some() {
                    engine::set_session_default_policy(FormatPolicy::Auto);
                }
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Global, GxbOption::DeltaRunCap) => match value {
            GxbValue::Count(Some(0)) => Err(Error::InvalidValue(
                "GxB_set(DeltaRunCap): cap must be >= 1 (None means auto)".into(),
            )),
            GxbValue::Count(cap) => {
                delta::set_session_run_cap(cap);
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Global, GxbOption::FlushWindowMs) => match value {
            GxbValue::Millis(ms) => {
                snapshot::set_session_flush_window_ms(ms);
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Matrix(m), GxbOption::Format) => match value {
            GxbValue::Format(f) => m.m.set_format(f),
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Matrix(m), GxbOption::FormatPolicy) => match value {
            GxbValue::FormatPolicy(p) => {
                m.m.set_format_policy(p);
                Ok(())
            }
            v => Err(type_mismatch(option, &v)),
        },
        (GxbScope::Matrix(m), GxbOption::TileShape) => match value {
            GxbValue::TileShape(Some((r, c))) => m.m.set_tile_shape(r, c),
            GxbValue::TileShape(None) => m.m.clear_tile_shape(),
            v => Err(type_mismatch(option, &v)),
        },
        _ => Err(unsupported(&scope, option, "set")),
    }
}

/// `GxB_get(scope, option)`: read one option back. Every settable pair
/// reads back what was set; [`GxbOption::ReadEpoch`] is additionally
/// readable on matrix and vector scopes.
pub fn gxb_get(scope: GxbScope, option: GxbOption) -> Result<GxbValue> {
    match (&scope, option) {
        (GxbScope::Global, GxbOption::Format) => match engine::session_default_policy() {
            FormatPolicy::Force(f) => Ok(GxbValue::Format(f)),
            p => Err(Error::InvalidValue(format!(
                "GxB_get(Global, Format): the default policy is {p:?}, not a pinned format"
            ))),
        },
        (GxbScope::Global, GxbOption::FormatPolicy) => {
            Ok(GxbValue::FormatPolicy(engine::session_default_policy()))
        }
        (GxbScope::Global, GxbOption::TileShape) => Ok(GxbValue::TileShape(
            engine::session_default_policy().tile_grid(),
        )),
        (GxbScope::Global, GxbOption::DeltaRunCap) => Ok(GxbValue::Count(delta::session_run_cap())),
        (GxbScope::Global, GxbOption::FlushWindowMs) => {
            Ok(GxbValue::Millis(snapshot::session_flush_window_ms()))
        }
        (GxbScope::Matrix(m), GxbOption::Format) => Ok(GxbValue::Format(m.m.format()?)),
        (GxbScope::Matrix(m), GxbOption::FormatPolicy) => {
            Ok(GxbValue::FormatPolicy(m.m.format_policy()))
        }
        (GxbScope::Matrix(m), GxbOption::TileShape) => Ok(GxbValue::TileShape(m.m.tile_shape())),
        (GxbScope::Matrix(m), GxbOption::ReadEpoch) => Ok(GxbValue::Epoch(m.read_epoch())),
        (GxbScope::Vector(v), GxbOption::ReadEpoch) => Ok(GxbValue::Epoch(v.read_epoch())),
        _ => Err(unsupported(&scope, option, "get")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::with_session;
    use crate::value::{GrbType, Value};
    use graphblas_core::exec::Mode;

    #[test]
    fn global_knobs_round_trip_and_reset_on_finalize() {
        with_session(Mode::Blocking, || {
            gxb_set(
                GxbScope::Global,
                GxbOption::DeltaRunCap,
                GxbValue::Count(Some(17)),
            )
            .unwrap();
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::DeltaRunCap).unwrap(),
                GxbValue::Count(Some(17))
            );
            gxb_set(
                GxbScope::Global,
                GxbOption::FlushWindowMs,
                GxbValue::Millis(Some(25)),
            )
            .unwrap();
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::FlushWindowMs).unwrap(),
                GxbValue::Millis(Some(25))
            );
            gxb_set(
                GxbScope::Global,
                GxbOption::TileShape,
                GxbValue::TileShape(Some((2, 3))),
            )
            .unwrap();
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::TileShape).unwrap(),
                GxbValue::TileShape(Some((2, 3)))
            );
            // new matrices inherit the session default policy
            let m = GrbMatrix::new(GrbType::Int32, 10, 10).unwrap();
            assert_eq!(
                gxb_get(GxbScope::Matrix(&m), GxbOption::TileShape).unwrap(),
                GxbValue::TileShape(Some((2, 3)))
            );
        })
        .unwrap();
        // finalize restored every global to auto
        crate::context::with_no_session(|| {
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::DeltaRunCap).unwrap(),
                GxbValue::Count(None)
            );
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::FlushWindowMs).unwrap(),
                GxbValue::Millis(None)
            );
            assert_eq!(
                gxb_get(GxbScope::Global, GxbOption::FormatPolicy).unwrap(),
                GxbValue::FormatPolicy(FormatPolicy::Auto)
            );
        })
        .unwrap();
    }

    #[test]
    fn matrix_tile_shape_set_converts_and_clears() {
        with_session(Mode::Blocking, || {
            let m = GrbMatrix::new(GrbType::Int32, 40, 40).unwrap();
            for i in 0..40 {
                m.set(i, (i * 7) % 40, Value::Int32(i as i32)).unwrap();
            }
            gxb_set(
                GxbScope::Matrix(&m),
                GxbOption::TileShape,
                GxbValue::TileShape(Some((4, 4))),
            )
            .unwrap();
            assert_eq!(
                gxb_get(GxbScope::Matrix(&m), GxbOption::Format).unwrap(),
                GxbValue::Format(Format::Tiled)
            );
            assert_eq!(m.nvals().unwrap(), 40);
            assert_eq!(m.get(7, 9).unwrap(), Some(Value::Int32(7)));
            gxb_set(
                GxbScope::Matrix(&m),
                GxbOption::TileShape,
                GxbValue::TileShape(None),
            )
            .unwrap();
            assert_ne!(
                gxb_get(GxbScope::Matrix(&m), GxbOption::Format).unwrap(),
                GxbValue::Format(Format::Tiled)
            );
            assert_eq!(m.nvals().unwrap(), 40);
        })
        .unwrap();
    }

    #[test]
    fn invalid_pairs_and_values_are_rejected() {
        with_session(Mode::Blocking, || {
            let m = GrbMatrix::new(GrbType::Int32, 4, 4).unwrap();
            let v = GrbVector::new(GrbType::Int32, 4).unwrap();
            // vector scope has no format options
            assert!(gxb_set(
                GxbScope::Vector(&v),
                GxbOption::Format,
                GxbValue::Format(Format::Csr)
            )
            .is_err());
            // read-epoch is get-only
            assert!(gxb_set(
                GxbScope::Matrix(&m),
                GxbOption::ReadEpoch,
                GxbValue::Epoch(0)
            )
            .is_err());
            // wrong value type for the option
            assert!(gxb_set(
                GxbScope::Matrix(&m),
                GxbOption::Format,
                GxbValue::Count(Some(1))
            )
            .is_err());
            // zero-sized grids and zero caps are invalid
            assert!(gxb_set(
                GxbScope::Matrix(&m),
                GxbOption::TileShape,
                GxbValue::TileShape(Some((0, 2)))
            )
            .is_err());
            assert!(gxb_set(
                GxbScope::Global,
                GxbOption::DeltaRunCap,
                GxbValue::Count(Some(0))
            )
            .is_err());
            // vector read-epoch works
            assert!(matches!(
                gxb_get(GxbScope::Vector(&v), GxbOption::ReadEpoch),
                Ok(GxbValue::Epoch(_))
            ));
        })
        .unwrap();
    }
}
