//! Runtime-typed opaque collections: `GrB_Matrix` and `GrB_Vector`
//! handles carrying their domain tag, over the typed core instantiated
//! with the [`Value`] union domain.

use graphblas_core::error::{Error, Result};
use graphblas_core::index::Index;
use graphblas_core::object::{Matrix, Vector};
use graphblas_core::storage::{DeltaStats, MatrixSnapshot, VectorSnapshot};
use graphblas_core::{Format, FormatPolicy};

use crate::ops::GrbBinaryOp;
use crate::value::{GrbType, Value};

/// `GxB`-style storage-format hint constants, mirroring the SuiteSparse
/// extension's `GxB_SPARSE` / `GxB_BITMAP` / `GxB_HYPERSPARSE` plus the
/// by-column orientation. Pass to [`GrbMatrix::set_format`].
pub const GXB_FORMAT_CSR: Format = Format::Csr;
/// Column-oriented storage (`GxB_BY_COL`): transpose reads become free.
pub const GXB_FORMAT_CSC: Format = Format::Csc;
/// Presence-bitmap storage (`GxB_BITMAP`), for dense-ish matrices.
pub const GXB_FORMAT_BITMAP: Format = Format::Bitmap;
/// Hypersparse storage (`GxB_HYPERSPARSE`), for nnz ≪ nrows.
pub const GXB_FORMAT_HYPER: Format = Format::Hyper;
/// 2D-tiled hypersparse storage; the default grid applies. Pick a
/// specific grid with `gxb_set(…, GxbOption::TileShape, …)`.
pub const GXB_FORMAT_TILED: Format = Format::Tiled;
/// Let the engine pick per value from observed density (`GxB_AUTO_SPARSITY`).
pub const GXB_FORMAT_AUTO: FormatPolicy = FormatPolicy::Auto;

/// A dynamically-typed `GrB_Matrix` handle.
#[derive(Debug, Clone)]
pub struct GrbMatrix {
    ty: GrbType,
    pub(crate) m: Matrix<Value>,
}

impl GrbMatrix {
    /// `GrB_Matrix_new(&A, type, nrows, ncols)`.
    pub fn new(ty: GrbType, nrows: Index, ncols: Index) -> Result<Self> {
        Ok(GrbMatrix {
            ty,
            m: Matrix::new(nrows, ncols)?,
        })
    }

    pub fn domain(&self) -> GrbType {
        self.ty
    }

    /// `GrB_Matrix_nrows`.
    pub fn nrows(&self) -> Index {
        self.m.nrows()
    }

    /// `GrB_Matrix_ncols`.
    pub fn ncols(&self) -> Index {
        self.m.ncols()
    }

    /// `GrB_Matrix_nvals` (forces completion).
    pub fn nvals(&self) -> Result<usize> {
        self.m.nvals()
    }

    /// `GrB_Matrix_build(C, rows, cols, vals, n, dup)`. Values are cast
    /// into the matrix domain (the C API's typed build variants);
    /// duplicates combined with `dup`, which must be an operator over
    /// this matrix's domain.
    pub fn build(
        &self,
        rows: &[Index],
        cols: &[Index],
        vals: &[Value],
        dup: &GrbBinaryOp,
    ) -> Result<()> {
        dup.check_domains(self.ty, self.ty, self.ty)?;
        let cast: Vec<Value> = vals
            .iter()
            .map(|v| v.try_cast_to(self.ty))
            .collect::<Result<_>>()?;
        self.m.build(rows, cols, &cast, &dup.as_dyn())
    }

    /// `GrB_Matrix_setElement` (value cast into the matrix domain; a
    /// user-defined domain accepts only its own values).
    pub fn set(&self, i: Index, j: Index, v: Value) -> Result<()> {
        self.m.set(i, j, v.try_cast_to(self.ty)?)
    }

    /// `GrB_Matrix_removeElement`. Removing an element that is not
    /// stored is a no-op, per the spec.
    pub fn remove(&self, i: Index, j: Index) -> Result<()> {
        self.m.remove(i, j)
    }

    /// `GrB_Matrix_extractElement`: `Ok(None)` = `GrB_NO_VALUE`.
    pub fn get(&self, i: Index, j: Index) -> Result<Option<Value>> {
        self.m.get(i, j)
    }

    /// `GrB_Matrix_extractTuples` (forces completion).
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Index, Value)>> {
        self.m.extract_tuples()
    }

    /// `GrB_Matrix_clear`.
    pub fn clear(&self) {
        self.m.clear()
    }

    /// `GrB_Matrix_dup`.
    pub fn dup(&self) -> GrbMatrix {
        GrbMatrix {
            ty: self.ty,
            m: self.m.dup(),
        }
    }

    /// Force completion of this object (`GrB_Matrix_wait`).
    pub fn wait(&self) -> Result<()> {
        self.m.wait()
    }

    /// `GxB_Matrix_snapshot`-style extension: an O(1) immutable read
    /// view at the current delta epoch. Reads against it never block,
    /// or are blocked by, concurrent `setElement`/`removeElement`
    /// traffic on this handle.
    pub fn snapshot(&self) -> GrbMatrixSnapshot {
        GrbMatrixSnapshot {
            ty: self.ty,
            s: self.m.snapshot(),
        }
    }

    /// `GxB`-style read-epoch probe: the delta epoch a snapshot taken
    /// now would pin (monotone over the object's lifetime).
    pub fn read_epoch(&self) -> u64 {
        self.m.delta_stats().epoch
    }

    /// Pending-update observability: buffered entries, sealed runs, and
    /// the current epoch.
    pub fn delta_stats(&self) -> DeltaStats {
        self.m.delta_stats()
    }

    /// `GxB_Matrix_Option_get(…, GxB_SPARSITY_STATUS, …)`: the storage
    /// format currently holding this matrix's value (forces completion).
    /// Sugar over [`gxb_get`](crate::gxb_get) at matrix scope.
    pub fn format(&self) -> Result<Format> {
        match crate::options::gxb_get(
            crate::options::GxbScope::Matrix(self),
            crate::options::GxbOption::Format,
        )? {
            crate::options::GxbValue::Format(f) => Ok(f),
            v => Err(Error::InvalidValue(format!(
                "GxB_get(Matrix, Format) returned {v:?}"
            ))),
        }
    }

    /// `GxB_Matrix_Option_set(…, GxB_SPARSITY_CONTROL, …)`: pin this
    /// matrix to one of the `GXB_FORMAT_*` layouts, converting the
    /// current value and directing future results into the same layout.
    /// Sugar over [`gxb_set`](crate::gxb_set) at matrix scope.
    pub fn set_format(&self, format: Format) -> Result<()> {
        crate::options::gxb_set(
            crate::options::GxbScope::Matrix(self),
            crate::options::GxbOption::Format,
            crate::options::GxbValue::Format(format),
        )
    }

    /// Restore automatic format selection ([`GXB_FORMAT_AUTO`]) or any
    /// other policy for values computed into this matrix. Sugar over
    /// [`gxb_set`](crate::gxb_set) at matrix scope.
    pub fn set_format_policy(&self, policy: FormatPolicy) {
        let _ = crate::options::gxb_set(
            crate::options::GxbScope::Matrix(self),
            crate::options::GxbOption::FormatPolicy,
            crate::options::GxbValue::FormatPolicy(policy),
        );
    }

    /// Check this matrix's domain against an expected one
    /// (`GrB_DOMAIN_MISMATCH` naming both domains, for `GrB_error()`).
    pub(crate) fn expect_domain(&self, ty: GrbType, role: &str) -> Result<()> {
        if self.ty != ty {
            return Err(Error::DomainMismatch(format!(
                "{role} has domain {} but {} is required",
                self.ty.c_name(),
                ty.c_name()
            )));
        }
        Ok(())
    }
}

/// A dynamically-typed `GrB_Vector` handle.
#[derive(Debug, Clone)]
pub struct GrbVector {
    ty: GrbType,
    pub(crate) v: Vector<Value>,
}

impl GrbVector {
    /// `GrB_Vector_new(&v, type, n)`.
    pub fn new(ty: GrbType, n: Index) -> Result<Self> {
        Ok(GrbVector {
            ty,
            v: Vector::new(n)?,
        })
    }

    pub fn domain(&self) -> GrbType {
        self.ty
    }

    /// `GrB_Vector_size`.
    pub fn size(&self) -> Index {
        self.v.size()
    }

    /// `GrB_Vector_nvals` (forces completion).
    pub fn nvals(&self) -> Result<usize> {
        self.v.nvals()
    }

    /// `GrB_Vector_build`.
    pub fn build(&self, indices: &[Index], vals: &[Value], dup: &GrbBinaryOp) -> Result<()> {
        dup.check_domains(self.ty, self.ty, self.ty)?;
        let cast: Vec<Value> = vals
            .iter()
            .map(|v| v.try_cast_to(self.ty))
            .collect::<Result<_>>()?;
        self.v.build(indices, &cast, &dup.as_dyn())
    }

    /// `GrB_Vector_setElement` (value cast into the vector domain; a
    /// user-defined domain accepts only its own values).
    pub fn set(&self, i: Index, v: Value) -> Result<()> {
        self.v.set(i, v.try_cast_to(self.ty)?)
    }

    /// `GrB_Vector_removeElement`. Removing an absent element is a
    /// no-op, per the spec.
    pub fn remove(&self, i: Index) -> Result<()> {
        self.v.remove(i)
    }

    /// `GrB_Vector_extractElement`.
    pub fn get(&self, i: Index) -> Result<Option<Value>> {
        self.v.get(i)
    }

    /// `GrB_Vector_extractTuples`.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Value)>> {
        self.v.extract_tuples()
    }

    /// `GrB_Vector_clear`.
    pub fn clear(&self) {
        self.v.clear()
    }

    /// `GrB_Vector_dup`.
    pub fn dup(&self) -> GrbVector {
        GrbVector {
            ty: self.ty,
            v: self.v.dup(),
        }
    }

    /// Force completion (`GrB_Vector_wait`).
    pub fn wait(&self) -> Result<()> {
        self.v.wait()
    }

    /// `GxB_Vector_snapshot`-style extension; see
    /// [`GrbMatrix::snapshot`].
    pub fn snapshot(&self) -> GrbVectorSnapshot {
        GrbVectorSnapshot {
            ty: self.ty,
            s: self.v.snapshot(),
        }
    }

    /// `GxB`-style read-epoch probe; see [`GrbMatrix::read_epoch`].
    pub fn read_epoch(&self) -> u64 {
        self.v.delta_stats().epoch
    }

    /// Pending-update observability; see [`GrbMatrix::delta_stats`].
    pub fn delta_stats(&self) -> DeltaStats {
        self.v.delta_stats()
    }

    pub(crate) fn expect_domain(&self, ty: GrbType, role: &str) -> Result<()> {
        if self.ty != ty {
            return Err(Error::DomainMismatch(format!(
                "{role} has domain {} but {} is required",
                self.ty.c_name(),
                ty.c_name()
            )));
        }
        Ok(())
    }
}

/// A dynamically-typed snapshot handle (`GxB`-style extension): the
/// immutable epoch-versioned view returned by [`GrbMatrix::snapshot`].
#[derive(Debug)]
pub struct GrbMatrixSnapshot {
    ty: GrbType,
    s: MatrixSnapshot<Value>,
}

impl GrbMatrixSnapshot {
    pub fn domain(&self) -> GrbType {
        self.ty
    }

    /// The delta epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.s.epoch()
    }

    pub fn nrows(&self) -> Index {
        self.s.nrows()
    }

    pub fn ncols(&self) -> Index {
        self.s.ncols()
    }

    /// Stored-element count at the snapshot's epoch.
    pub fn nvals(&self) -> Result<usize> {
        self.s.nvals()
    }

    /// Point probe at the snapshot's epoch (`Ok(None)` = `GrB_NO_VALUE`).
    pub fn get(&self, i: Index, j: Index) -> Result<Option<Value>> {
        self.s.get(i, j)
    }

    /// All stored tuples at the snapshot's epoch, row-major.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Index, Value)>> {
        self.s.extract_tuples()
    }

    /// A fresh [`GrbMatrix`] whose value is this snapshot — usable as an
    /// input to any operation.
    pub fn to_matrix(&self) -> GrbMatrix {
        GrbMatrix {
            ty: self.ty,
            m: self.s.to_matrix(),
        }
    }
}

/// A dynamically-typed vector snapshot handle; see [`GrbMatrixSnapshot`].
#[derive(Debug)]
pub struct GrbVectorSnapshot {
    ty: GrbType,
    s: VectorSnapshot<Value>,
}

impl GrbVectorSnapshot {
    pub fn domain(&self) -> GrbType {
        self.ty
    }

    /// The delta epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.s.epoch()
    }

    pub fn size(&self) -> Index {
        self.s.size()
    }

    /// Stored-element count at the snapshot's epoch.
    pub fn nvals(&self) -> Result<usize> {
        self.s.nvals()
    }

    /// Point probe at the snapshot's epoch.
    pub fn get(&self, i: Index) -> Result<Option<Value>> {
        self.s.get(i)
    }

    /// All stored tuples at the snapshot's epoch.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Value)>> {
        self.s.extract_tuples()
    }

    /// A fresh [`GrbVector`] whose value is this snapshot.
    pub fn to_vector(&self) -> GrbVector {
        GrbVector {
            ty: self.ty,
            v: self.s.to_vector(),
        }
    }
}

/// Internal: check a stored value's tag matches the declared domain
/// (invariant check used by debug assertions in the operation layer).
#[allow(dead_code)]
pub(crate) fn domain_invariant(m: &GrbMatrix) -> Result<bool> {
    Ok(m.extract_tuples()?
        .iter()
        .all(|(_, _, v)| v.type_of() == m.ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_lifecycle() {
        let m = GrbMatrix::new(GrbType::Int32, 2, 3).unwrap();
        assert_eq!(m.domain(), GrbType::Int32);
        assert_eq!((m.nrows(), m.ncols()), (2, 3));
        assert_eq!(m.nvals().unwrap(), 0);
        m.set(0, 1, Value::Int32(5)).unwrap();
        // setElement casts, like the C typed variants
        m.set(1, 2, Value::Fp64(2.9)).unwrap();
        assert_eq!(m.get(1, 2).unwrap(), Some(Value::Int32(2)));
        assert_eq!(m.get(0, 0).unwrap(), None); // GrB_NO_VALUE
        assert!(domain_invariant(&m).unwrap());
        m.clear();
        assert_eq!(m.nvals().unwrap(), 0);
    }

    #[test]
    fn build_checks_dup_domain() {
        let m = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let dup_fp = GrbBinaryOp::plus(GrbType::Fp32).unwrap();
        let e = m
            .build(&[0], &[0], &[Value::Int32(1)], &dup_fp)
            .unwrap_err();
        assert!(matches!(e, Error::DomainMismatch(_)));
        let dup = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        m.build(&[0, 0], &[0, 0], &[Value::Int32(1), Value::Int32(2)], &dup)
            .unwrap();
        assert_eq!(m.get(0, 0).unwrap(), Some(Value::Int32(3)));
    }

    #[test]
    fn vector_lifecycle() {
        let v = GrbVector::new(GrbType::Fp32, 4).unwrap();
        v.set(2, Value::Fp32(1.5)).unwrap();
        assert_eq!(v.nvals().unwrap(), 1);
        assert_eq!(v.extract_tuples().unwrap(), vec![(2, Value::Fp32(1.5))]);
        let d = v.dup();
        v.set(0, Value::Fp32(9.0)).unwrap();
        assert_eq!(d.nvals().unwrap(), 1); // dup is a copy
    }

    #[test]
    fn remove_element_and_absent_noop() {
        let m = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        m.set(0, 1, Value::Int32(5)).unwrap();
        m.remove(0, 1).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), None);
        // spec-conformant no-op: removing an element that was never
        // stored succeeds and changes nothing
        m.remove(1, 1).unwrap();
        assert_eq!(m.nvals().unwrap(), 0);
        // out-of-bounds is still an API error
        assert!(matches!(m.remove(5, 0), Err(Error::InvalidIndex(_))));

        let v = GrbVector::new(GrbType::Fp64, 3).unwrap();
        v.set(1, Value::Fp64(1.5)).unwrap();
        v.remove(1).unwrap();
        v.remove(2).unwrap(); // absent: no-op
        assert_eq!(v.nvals().unwrap(), 0);
        assert!(matches!(v.remove(3), Err(Error::InvalidIndex(_))));
    }

    #[test]
    fn format_hints_round_trip() {
        let m = GrbMatrix::new(GrbType::Int32, 4, 4).unwrap();
        m.set(0, 0, Value::Int32(1)).unwrap();
        m.set_format(GXB_FORMAT_BITMAP).unwrap();
        assert_eq!(m.format().unwrap(), Format::Bitmap);
        // content is unchanged by migration
        assert_eq!(m.get(0, 0).unwrap(), Some(Value::Int32(1)));
        assert_eq!(m.nvals().unwrap(), 1);
        m.set_format(GXB_FORMAT_HYPER).unwrap();
        assert_eq!(m.format().unwrap(), Format::Hyper);
        m.set_format(GXB_FORMAT_CSC).unwrap();
        assert_eq!(m.format().unwrap(), Format::Csc);
        m.set_format(GXB_FORMAT_CSR).unwrap();
        assert_eq!(m.format().unwrap(), Format::Csr);
        m.set_format_policy(GXB_FORMAT_AUTO);
        // next computed value re-chooses: a point update densifies it
        m.set(1, 1, Value::Int32(2)).unwrap();
        assert_eq!(m.format().unwrap(), Format::Bitmap); // 2/16 = 12.5% >= 1/16
    }

    #[test]
    fn snapshot_surface_is_isolated_and_typed() {
        let m = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        m.set(0, 0, Value::Int32(1)).unwrap();
        assert_eq!(m.read_epoch(), 1);
        let snap = m.snapshot();
        assert_eq!(snap.domain(), GrbType::Int32);
        assert_eq!(snap.epoch(), 1);
        m.set(0, 0, Value::Int32(9)).unwrap();
        assert_eq!(snap.get(0, 0).unwrap(), Some(Value::Int32(1)));
        assert_eq!(snap.nvals().unwrap(), 1);
        let frozen = snap.to_matrix();
        assert_eq!(frozen.get(0, 0).unwrap(), Some(Value::Int32(1)));
        assert_eq!(m.get(0, 0).unwrap(), Some(Value::Int32(9)));

        let v = GrbVector::new(GrbType::Fp64, 3).unwrap();
        v.set(1, Value::Fp64(1.5)).unwrap();
        let vs = v.snapshot();
        v.remove(1).unwrap();
        assert_eq!(vs.get(1).unwrap(), Some(Value::Fp64(1.5)));
        assert_eq!(vs.to_vector().nvals().unwrap(), 1);
        assert_eq!(v.nvals().unwrap(), 0);
        assert_eq!(v.delta_stats().pending_len, 0); // read drained
    }

    #[test]
    fn expect_domain_errors() {
        let m = GrbMatrix::new(GrbType::Bool, 1, 1).unwrap();
        assert!(m.expect_domain(GrbType::Bool, "A").is_ok());
        assert!(matches!(
            m.expect_domain(GrbType::Fp64, "A"),
            Err(Error::DomainMismatch(_))
        ));
    }
}
