//! The dynamically-typed scalar [`Value`] and the runtime domain tags
//! ([`GrbType`], Table III's `GrB_Type`).
//!
//! The C API is dynamically typed: a `GrB_Matrix` carries its domain at
//! runtime and mismatches surface as `GrB_DOMAIN_MISMATCH`. This facade
//! reproduces that by instantiating the typed core over a tagged-union
//! domain — every built-in C domain is a `Value` variant, and the C
//! implicit-conversion rules live in [`Value::cast_to`].

use graphblas_core::scalar::AsBool;

/// `GrB_Type`: the identifier of a built-in domain (Table V lists
/// `GrB_BOOL`, `GrB_INT32`, `GrB_FP32`; the full C set is supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrbType {
    Bool,
    Int8,
    Int16,
    Int32,
    Int64,
    Uint8,
    Uint16,
    Uint32,
    Uint64,
    Fp32,
    Fp64,
}

impl GrbType {
    /// The C spelling (`GrB_INT32`, …).
    pub fn c_name(&self) -> &'static str {
        match self {
            GrbType::Bool => "GrB_BOOL",
            GrbType::Int8 => "GrB_INT8",
            GrbType::Int16 => "GrB_INT16",
            GrbType::Int32 => "GrB_INT32",
            GrbType::Int64 => "GrB_INT64",
            GrbType::Uint8 => "GrB_UINT8",
            GrbType::Uint16 => "GrB_UINT16",
            GrbType::Uint32 => "GrB_UINT32",
            GrbType::Uint64 => "GrB_UINT64",
            GrbType::Fp32 => "GrB_FP32",
            GrbType::Fp64 => "GrB_FP64",
        }
    }

    /// `true` for the integer and floating-point domains (the ones the
    /// arithmetic predefined operators exist for).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, GrbType::Bool)
    }
}

/// A dynamically-typed scalar: one variant per built-in C domain.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    Bool(bool),
    Int8(i8),
    Int16(i16),
    Int32(i32),
    Int64(i64),
    Uint8(u8),
    Uint16(u16),
    Uint32(u32),
    Uint64(u64),
    Fp32(f32),
    Fp64(f64),
}

macro_rules! from_prim {
    ($($t:ty => $v:ident),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::$v(x) }
        }
    )*};
}
from_prim!(bool => Bool, i8 => Int8, i16 => Int16, i32 => Int32, i64 => Int64,
           u8 => Uint8, u16 => Uint16, u32 => Uint32, u64 => Uint64,
           f32 => Fp32, f64 => Fp64);

/// Apply `$body` with `x` bound to the numeric payload widened to the
/// given uniform representation, rebuilding the same variant after.
macro_rules! numeric_map2 {
    ($a:expr, $b:expr, $x:ident, $y:ident => $int:expr, $flt:expr) => {
        match ($a, $b) {
            (Value::Int8($x), Value::Int8($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int8($int as i8)
            }
            (Value::Int16($x), Value::Int16($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int16($int as i16)
            }
            (Value::Int32($x), Value::Int32($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int32($int as i32)
            }
            (Value::Int64($x), Value::Int64($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int64($int as i64)
            }
            (Value::Uint8($x), Value::Uint8($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint8($int as u8)
            }
            (Value::Uint16($x), Value::Uint16($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint16($int as u16)
            }
            (Value::Uint32($x), Value::Uint32($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint32($int as u32)
            }
            (Value::Uint64($x), Value::Uint64($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint64($int as u64)
            }
            (Value::Fp32($x), Value::Fp32($y)) => {
                let ($x, $y) = (*$x as f64, *$y as f64);
                Value::Fp32($flt as f32)
            }
            (Value::Fp64($x), Value::Fp64($y)) => {
                let ($x, $y) = (*$x, *$y);
                Value::Fp64($flt)
            }
            (a, b) => panic!("domain confusion past the API checks: {a:?} vs {b:?} (capi bug)"),
        }
    };
}

impl Value {
    /// The runtime domain tag.
    pub fn type_of(&self) -> GrbType {
        match self {
            Value::Bool(_) => GrbType::Bool,
            Value::Int8(_) => GrbType::Int8,
            Value::Int16(_) => GrbType::Int16,
            Value::Int32(_) => GrbType::Int32,
            Value::Int64(_) => GrbType::Int64,
            Value::Uint8(_) => GrbType::Uint8,
            Value::Uint16(_) => GrbType::Uint16,
            Value::Uint32(_) => GrbType::Uint32,
            Value::Uint64(_) => GrbType::Uint64,
            Value::Fp32(_) => GrbType::Fp32,
            Value::Fp64(_) => GrbType::Fp64,
        }
    }

    /// The default value of a domain (C zero-initialization).
    pub fn zero_of(ty: GrbType) -> Value {
        match ty {
            GrbType::Bool => Value::Bool(false),
            GrbType::Int8 => Value::Int8(0),
            GrbType::Int16 => Value::Int16(0),
            GrbType::Int32 => Value::Int32(0),
            GrbType::Int64 => Value::Int64(0),
            GrbType::Uint8 => Value::Uint8(0),
            GrbType::Uint16 => Value::Uint16(0),
            GrbType::Uint32 => Value::Uint32(0),
            GrbType::Uint64 => Value::Uint64(0),
            GrbType::Fp32 => Value::Fp32(0.0),
            GrbType::Fp64 => Value::Fp64(0.0),
        }
    }

    /// The number one of a domain.
    pub fn one_of(ty: GrbType) -> Value {
        Value::zero_of(ty).map_f64(|_| 1.0)
    }

    /// Numeric payload as `f64` (C conversion; `bool` as 0/1).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Int8(x) => *x as f64,
            Value::Int16(x) => *x as f64,
            Value::Int32(x) => *x as f64,
            Value::Int64(x) => *x as f64,
            Value::Uint8(x) => *x as f64,
            Value::Uint16(x) => *x as f64,
            Value::Uint32(x) => *x as f64,
            Value::Uint64(x) => *x as f64,
            Value::Fp32(x) => *x as f64,
            Value::Fp64(x) => *x,
        }
    }

    /// Rebuild the same variant from an `f64` (used for unary numeric
    /// maps — exact for the magnitudes used in graph computations).
    pub fn map_f64(&self, f: impl FnOnce(f64) -> f64) -> Value {
        let r = f(self.as_f64());
        match self.type_of() {
            GrbType::Bool => Value::Bool(r != 0.0),
            GrbType::Int8 => Value::Int8(r as i8),
            GrbType::Int16 => Value::Int16(r as i16),
            GrbType::Int32 => Value::Int32(r as i32),
            GrbType::Int64 => Value::Int64(r as i64),
            GrbType::Uint8 => Value::Uint8(r as u8),
            GrbType::Uint16 => Value::Uint16(r as u16),
            GrbType::Uint32 => Value::Uint32(r as u32),
            GrbType::Uint64 => Value::Uint64(r as u64),
            GrbType::Fp32 => Value::Fp32(r as f32),
            GrbType::Fp64 => Value::Fp64(r),
        }
    }

    /// The C implicit domain conversion (`(T) x`).
    pub fn cast_to(&self, ty: GrbType) -> Value {
        if self.type_of() == ty {
            return self.clone();
        }
        match ty {
            GrbType::Bool => Value::Bool(self.as_bool()),
            _ => Value::zero_of(ty).map_f64(|_| self.as_f64()),
        }
    }

    // ----- arithmetic used by the predefined operators -----

    pub fn add(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_add(y), x + y)
    }

    pub fn sub(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_sub(y), x - y)
    }

    pub fn mul(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_mul(y), x * y)
    }

    pub fn div(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => if y == 0 { 0 } else { x / y }, x / y)
    }

    pub fn min_v(&self, rhs: &Value) -> Value {
        if rhs.as_f64() < self.as_f64() {
            rhs.clone()
        } else {
            self.clone()
        }
    }

    pub fn max_v(&self, rhs: &Value) -> Value {
        if rhs.as_f64() > self.as_f64() {
            rhs.clone()
        } else {
            self.clone()
        }
    }
}

impl AsBool for Value {
    fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Fp32(x) => *x != 0.0,
            Value::Fp64(x) => *x != 0.0,
            v => v.as_f64() != 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_names() {
        assert_eq!(Value::Int32(5).type_of(), GrbType::Int32);
        assert_eq!(GrbType::Fp32.c_name(), "GrB_FP32");
        assert!(GrbType::Int64.is_numeric());
        assert!(!GrbType::Bool.is_numeric());
    }

    #[test]
    fn arithmetic_per_domain() {
        assert_eq!(Value::Int32(2).add(&Value::Int32(3)), Value::Int32(5));
        assert_eq!(Value::Fp64(2.5).mul(&Value::Fp64(2.0)), Value::Fp64(5.0));
        assert_eq!(Value::Uint8(200).add(&Value::Uint8(100)), Value::Uint8(44)); // wrap
        assert_eq!(Value::Int64(7).div(&Value::Int64(2)), Value::Int64(3));
        assert_eq!(Value::Int64(7).div(&Value::Int64(0)), Value::Int64(0)); // total
        assert_eq!(Value::Int32(2).min_v(&Value::Int32(-1)), Value::Int32(-1));
        assert_eq!(Value::Fp32(2.0).max_v(&Value::Fp32(3.0)), Value::Fp32(3.0));
    }

    #[test]
    #[should_panic(expected = "domain confusion")]
    fn mixed_domain_arithmetic_is_a_bug_not_a_silent_cast() {
        Value::Int32(1).add(&Value::Fp32(1.0));
    }

    #[test]
    fn casting_follows_c() {
        assert_eq!(Value::Fp64(2.9).cast_to(GrbType::Int32), Value::Int32(2));
        assert_eq!(Value::Int32(-1).cast_to(GrbType::Bool), Value::Bool(true));
        assert_eq!(Value::Bool(true).cast_to(GrbType::Fp32), Value::Fp32(1.0));
        assert_eq!(Value::Int32(7).cast_to(GrbType::Int32), Value::Int32(7));
    }

    #[test]
    fn as_bool_nonzero_rule() {
        assert!(Value::Int32(-5).as_bool());
        assert!(!Value::Fp64(0.0).as_bool());
        assert!(Value::Bool(true).as_bool());
        assert!(!Value::Uint64(0).as_bool());
    }

    #[test]
    fn zero_and_one() {
        assert_eq!(Value::zero_of(GrbType::Fp32), Value::Fp32(0.0));
        assert_eq!(Value::one_of(GrbType::Int64), Value::Int64(1));
        assert_eq!(Value::one_of(GrbType::Bool), Value::Bool(true));
    }
}
