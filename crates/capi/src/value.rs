//! The dynamically-typed scalar [`Value`] and the runtime domain tags
//! ([`GrbType`], Table III's `GrB_Type`).
//!
//! The C API is dynamically typed: a `GrB_Matrix` carries its domain at
//! runtime and mismatches surface as `GrB_DOMAIN_MISMATCH`. This facade
//! reproduces that by instantiating the typed core over a tagged-union
//! domain — every built-in C domain is a `Value` variant, the C
//! implicit-conversion rules live in [`Value::try_cast_to`], and
//! runtime-registered user types (`GrB_Type_new`; see [`crate::udf`])
//! ride the [`Value::Udf`] variant as opaque byte payloads.
//!
//! ## Conversion semantics (pinned)
//!
//! `try_cast_to` implements C's implicit conversions with the edge cases
//! nailed down (C leaves some implementation-defined or undefined):
//!
//! * **integer → integer**: modular wrap at the target width, both
//!   directions (`(uint8_t)-1 == 255`), via an exact 128-bit intermediate
//!   — never through a float, so 64-bit values above 2⁵³ stay exact.
//! * **float → integer**: truncation toward zero; out-of-range values
//!   **saturate** at the target bounds and NaN becomes 0 (C makes these
//!   undefined; we adopt Rust's defined `as` semantics).
//! * **integer → float**: nearest-even rounding (the C conversion).
//! * **anything built-in → bool**: `x != 0`.
//! * **user-defined types**: *no* implicit conversions — a UDT casts
//!   only to itself; anything else is `GrB_DOMAIN_MISMATCH` naming both
//!   domains.

use graphblas_core::algebra::udf::{UdfTypeId, UdfValue};
use graphblas_core::error::{Error, Result};
use graphblas_core::scalar::AsBool;

/// `GrB_Type`: the identifier of a built-in domain (Table V lists
/// `GrB_BOOL`, `GrB_INT32`, `GrB_FP32`; the full C set is supported) or
/// a runtime-registered user type (`GrB_Type_new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrbType {
    Bool,
    Int8,
    Int16,
    Int32,
    Int64,
    Uint8,
    Uint16,
    Uint32,
    Uint64,
    Fp32,
    Fp64,
    /// A user-defined type registered through `grb_type_new`.
    Udf(UdfTypeId),
}

impl GrbType {
    /// The C spelling (`GrB_INT32`, …); user-defined types report their
    /// registered name.
    pub fn c_name(&self) -> &'static str {
        match self {
            GrbType::Bool => "GrB_BOOL",
            GrbType::Int8 => "GrB_INT8",
            GrbType::Int16 => "GrB_INT16",
            GrbType::Int32 => "GrB_INT32",
            GrbType::Int64 => "GrB_INT64",
            GrbType::Uint8 => "GrB_UINT8",
            GrbType::Uint16 => "GrB_UINT16",
            GrbType::Uint32 => "GrB_UINT32",
            GrbType::Uint64 => "GrB_UINT64",
            GrbType::Fp32 => "GrB_FP32",
            GrbType::Fp64 => "GrB_FP64",
            GrbType::Udf(id) => id.name(),
        }
    }

    /// `true` for the integer and floating-point domains (the ones the
    /// arithmetic predefined operators exist for).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, GrbType::Bool | GrbType::Udf(_))
    }

    /// `true` for runtime-registered user types.
    pub fn is_udf(&self) -> bool {
        matches!(self, GrbType::Udf(_))
    }

    /// The API-boundary castability rule: built-in domains implicitly
    /// convert among themselves; a user-defined domain converts only to
    /// itself. `GrB_DOMAIN_MISMATCH` names both domains so `GrB_error()`
    /// can report them.
    pub fn expect_castable_to(self, to: GrbType, what: &str) -> Result<()> {
        if self == to || (!self.is_udf() && !to.is_udf()) {
            Ok(())
        } else {
            Err(Error::DomainMismatch(format!(
                "{what} has domain {} but the operation expects {}: \
                 user-defined types cast only to themselves",
                self.c_name(),
                to.c_name()
            )))
        }
    }
}

/// A dynamically-typed scalar: one variant per built-in C domain, plus
/// the erased lane for runtime-registered user types.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    Bool(bool),
    Int8(i8),
    Int16(i16),
    Int32(i32),
    Int64(i64),
    Uint8(u8),
    Uint16(u16),
    Uint32(u32),
    Uint64(u64),
    Fp32(f32),
    Fp64(f64),
    /// A value of a user-defined type: opaque bytes the library moves
    /// but never interprets (the C contract for `GrB_Type_new` types).
    Udf(UdfValue),
}

macro_rules! from_prim {
    ($($t:ty => $v:ident),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::$v(x) }
        }
    )*};
}
from_prim!(bool => Bool, i8 => Int8, i16 => Int16, i32 => Int32, i64 => Int64,
           u8 => Uint8, u16 => Uint16, u32 => Uint32, u64 => Uint64,
           f32 => Fp32, f64 => Fp64);

impl From<UdfValue> for Value {
    fn from(v: UdfValue) -> Value {
        Value::Udf(v)
    }
}

/// Apply `$body` with `x` bound to the numeric payload widened to the
/// given uniform representation, rebuilding the same variant after.
macro_rules! numeric_map2 {
    ($a:expr, $b:expr, $x:ident, $y:ident => $int:expr, $flt:expr) => {
        match ($a, $b) {
            (Value::Int8($x), Value::Int8($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int8($int as i8)
            }
            (Value::Int16($x), Value::Int16($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int16($int as i16)
            }
            (Value::Int32($x), Value::Int32($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int32($int as i32)
            }
            (Value::Int64($x), Value::Int64($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Int64($int as i64)
            }
            (Value::Uint8($x), Value::Uint8($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint8($int as u8)
            }
            (Value::Uint16($x), Value::Uint16($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint16($int as u16)
            }
            (Value::Uint32($x), Value::Uint32($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint32($int as u32)
            }
            (Value::Uint64($x), Value::Uint64($y)) => {
                let ($x, $y) = (*$x as i128, *$y as i128);
                Value::Uint64($int as u64)
            }
            (Value::Fp32($x), Value::Fp32($y)) => {
                let ($x, $y) = (*$x as f64, *$y as f64);
                Value::Fp32($flt as f32)
            }
            (Value::Fp64($x), Value::Fp64($y)) => {
                let ($x, $y) = (*$x, *$y);
                Value::Fp64($flt)
            }
            (a, b) => panic!("domain confusion past the API checks: {a:?} vs {b:?} (capi bug)"),
        }
    };
}

impl Value {
    /// The runtime domain tag.
    pub fn type_of(&self) -> GrbType {
        match self {
            Value::Bool(_) => GrbType::Bool,
            Value::Int8(_) => GrbType::Int8,
            Value::Int16(_) => GrbType::Int16,
            Value::Int32(_) => GrbType::Int32,
            Value::Int64(_) => GrbType::Int64,
            Value::Uint8(_) => GrbType::Uint8,
            Value::Uint16(_) => GrbType::Uint16,
            Value::Uint32(_) => GrbType::Uint32,
            Value::Uint64(_) => GrbType::Uint64,
            Value::Fp32(_) => GrbType::Fp32,
            Value::Fp64(_) => GrbType::Fp64,
            Value::Udf(v) => GrbType::Udf(v.ty()),
        }
    }

    /// The default value of a domain (C zero-initialization; a UDT gets
    /// its registered size of zero bytes, exactly `calloc`).
    pub fn zero_of(ty: GrbType) -> Value {
        match ty {
            GrbType::Bool => Value::Bool(false),
            GrbType::Int8 => Value::Int8(0),
            GrbType::Int16 => Value::Int16(0),
            GrbType::Int32 => Value::Int32(0),
            GrbType::Int64 => Value::Int64(0),
            GrbType::Uint8 => Value::Uint8(0),
            GrbType::Uint16 => Value::Uint16(0),
            GrbType::Uint32 => Value::Uint32(0),
            GrbType::Uint64 => Value::Uint64(0),
            GrbType::Fp32 => Value::Fp32(0.0),
            GrbType::Fp64 => Value::Fp64(0.0),
            GrbType::Udf(id) => Value::Udf(
                UdfValue::new(id, &vec![0u8; id.size()])
                    .expect("zero bytes of the registered size"),
            ),
        }
    }

    /// The number one of a numeric domain (no such element exists for a
    /// user-defined type — callers gate on [`GrbType::is_numeric`]).
    pub fn one_of(ty: GrbType) -> Value {
        Value::zero_of(ty).map_f64(|_| 1.0)
    }

    /// The UDT payload, if this is a user-defined value.
    pub fn as_udf(&self) -> Option<&UdfValue> {
        match self {
            Value::Udf(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (C conversion; `bool` as 0/1). Panics on
    /// a user-defined value — UDT operands must be rejected by the API
    /// checks before any numeric path runs.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Int8(x) => *x as f64,
            Value::Int16(x) => *x as f64,
            Value::Int32(x) => *x as f64,
            Value::Int64(x) => *x as f64,
            Value::Uint8(x) => *x as f64,
            Value::Uint16(x) => *x as f64,
            Value::Uint32(x) => *x as f64,
            Value::Uint64(x) => *x as f64,
            Value::Fp32(x) => *x as f64,
            Value::Fp64(x) => *x,
            Value::Udf(v) => panic!(
                "domain confusion past the API checks: {v:?} has no numeric value (capi bug)"
            ),
        }
    }

    /// Exact integer payload of an integer/bool variant (never goes
    /// through a float, so 64-bit magnitudes above 2⁵³ stay exact).
    fn as_i128(&self) -> i128 {
        match self {
            Value::Bool(b) => *b as i128,
            Value::Int8(x) => *x as i128,
            Value::Int16(x) => *x as i128,
            Value::Int32(x) => *x as i128,
            Value::Int64(x) => *x as i128,
            Value::Uint8(x) => *x as i128,
            Value::Uint16(x) => *x as i128,
            Value::Uint32(x) => *x as i128,
            Value::Uint64(x) => *x as i128,
            v => panic!("as_i128 on non-integer {v:?} (capi bug)"),
        }
    }

    /// Rebuild the same variant from an `f64` (used for unary numeric
    /// maps — exact for the magnitudes used in graph computations).
    pub fn map_f64(&self, f: impl FnOnce(f64) -> f64) -> Value {
        let r = f(self.as_f64());
        match self.type_of() {
            GrbType::Bool => Value::Bool(r != 0.0),
            GrbType::Int8 => Value::Int8(r as i8),
            GrbType::Int16 => Value::Int16(r as i16),
            GrbType::Int32 => Value::Int32(r as i32),
            GrbType::Int64 => Value::Int64(r as i64),
            GrbType::Uint8 => Value::Uint8(r as u8),
            GrbType::Uint16 => Value::Uint16(r as u16),
            GrbType::Uint32 => Value::Uint32(r as u32),
            GrbType::Uint64 => Value::Uint64(r as u64),
            GrbType::Fp32 => Value::Fp32(r as f32),
            GrbType::Fp64 => Value::Fp64(r),
            GrbType::Udf(_) => unreachable!("as_f64 already rejected the UDT"),
        }
    }

    /// Integer-exact conversion into a numeric target: modular wrap for
    /// integer targets (the C conversion), nearest-even for floats.
    fn from_i128_wrapping(v: i128, ty: GrbType) -> Value {
        match ty {
            GrbType::Int8 => Value::Int8(v as i8),
            GrbType::Int16 => Value::Int16(v as i16),
            GrbType::Int32 => Value::Int32(v as i32),
            GrbType::Int64 => Value::Int64(v as i64),
            GrbType::Uint8 => Value::Uint8(v as u8),
            GrbType::Uint16 => Value::Uint16(v as u16),
            GrbType::Uint32 => Value::Uint32(v as u32),
            GrbType::Uint64 => Value::Uint64(v as u64),
            GrbType::Fp32 => Value::Fp32(v as f32),
            GrbType::Fp64 => Value::Fp64(v as f64),
            GrbType::Bool | GrbType::Udf(_) => unreachable!("handled before the numeric table"),
        }
    }

    /// Float conversion into a numeric target: truncation with
    /// saturation for integer targets (NaN → 0), rounding for floats.
    fn from_f64_saturating(r: f64, ty: GrbType) -> Value {
        match ty {
            GrbType::Int8 => Value::Int8(r as i8),
            GrbType::Int16 => Value::Int16(r as i16),
            GrbType::Int32 => Value::Int32(r as i32),
            GrbType::Int64 => Value::Int64(r as i64),
            GrbType::Uint8 => Value::Uint8(r as u8),
            GrbType::Uint16 => Value::Uint16(r as u16),
            GrbType::Uint32 => Value::Uint32(r as u32),
            GrbType::Uint64 => Value::Uint64(r as u64),
            GrbType::Fp32 => Value::Fp32(r as f32),
            GrbType::Fp64 => Value::Fp64(r),
            GrbType::Bool | GrbType::Udf(_) => unreachable!("handled before the numeric table"),
        }
    }

    /// The C implicit domain conversion (`(T) x`), fallible at the API
    /// boundary: user-defined types reject every cross-domain cast with
    /// `GrB_DOMAIN_MISMATCH` naming both domains.
    pub fn try_cast_to(&self, ty: GrbType) -> Result<Value> {
        if self.type_of() == ty {
            return Ok(self.clone());
        }
        if self.type_of().is_udf() || ty.is_udf() {
            return Err(Error::DomainMismatch(format!(
                "no implicit conversion from {} to {}: user-defined types cast only to themselves",
                self.type_of().c_name(),
                ty.c_name()
            )));
        }
        Ok(match ty {
            GrbType::Bool => Value::Bool(self.as_bool()),
            _ => match self {
                Value::Fp32(x) => Value::from_f64_saturating(*x as f64, ty),
                Value::Fp64(x) => Value::from_f64_saturating(*x, ty),
                v => Value::from_i128_wrapping(v.as_i128(), ty),
            },
        })
    }

    /// The C implicit domain conversion on the infallible kernel path:
    /// operand domains were verified at the API boundary, so a failure
    /// here is a dispatch bug, not a user error.
    pub fn cast_to(&self, ty: GrbType) -> Value {
        self.try_cast_to(ty)
            .unwrap_or_else(|e| panic!("domain confusion past the API checks: {e} (capi bug)"))
    }

    // ----- arithmetic used by the predefined operators -----

    pub fn add(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_add(y), x + y)
    }

    pub fn sub(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_sub(y), x - y)
    }

    pub fn mul(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => x.wrapping_mul(y), x * y)
    }

    pub fn div(&self, rhs: &Value) -> Value {
        numeric_map2!(self, rhs, x, y => if y == 0 { 0 } else { x / y }, x / y)
    }

    pub fn min_v(&self, rhs: &Value) -> Value {
        if rhs.as_f64() < self.as_f64() {
            rhs.clone()
        } else {
            self.clone()
        }
    }

    pub fn max_v(&self, rhs: &Value) -> Value {
        if rhs.as_f64() > self.as_f64() {
            rhs.clone()
        } else {
            self.clone()
        }
    }
}

impl AsBool for Value {
    fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Fp32(x) => *x != 0.0,
            Value::Fp64(x) => *x != 0.0,
            // A UDT value masks by its bytes: any nonzero byte is
            // "present and true" (C has no defined bool conversion for
            // structs; all-zero ≙ calloc'd default).
            Value::Udf(v) => v.bytes().iter().any(|&b| b != 0),
            v => v.as_f64() != 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_core::algebra::udf;

    #[test]
    fn tags_and_names() {
        assert_eq!(Value::Int32(5).type_of(), GrbType::Int32);
        assert_eq!(GrbType::Fp32.c_name(), "GrB_FP32");
        assert!(GrbType::Int64.is_numeric());
        assert!(!GrbType::Bool.is_numeric());
    }

    #[test]
    fn arithmetic_per_domain() {
        assert_eq!(Value::Int32(2).add(&Value::Int32(3)), Value::Int32(5));
        assert_eq!(Value::Fp64(2.5).mul(&Value::Fp64(2.0)), Value::Fp64(5.0));
        assert_eq!(Value::Uint8(200).add(&Value::Uint8(100)), Value::Uint8(44)); // wrap
        assert_eq!(Value::Int64(7).div(&Value::Int64(2)), Value::Int64(3));
        assert_eq!(Value::Int64(7).div(&Value::Int64(0)), Value::Int64(0)); // total
        assert_eq!(Value::Int32(2).min_v(&Value::Int32(-1)), Value::Int32(-1));
        assert_eq!(Value::Fp32(2.0).max_v(&Value::Fp32(3.0)), Value::Fp32(3.0));
    }

    #[test]
    #[should_panic(expected = "domain confusion")]
    fn mixed_domain_arithmetic_is_a_bug_not_a_silent_cast() {
        Value::Int32(1).add(&Value::Fp32(1.0));
    }

    #[test]
    fn casting_follows_c() {
        assert_eq!(Value::Fp64(2.9).cast_to(GrbType::Int32), Value::Int32(2));
        assert_eq!(Value::Int32(-1).cast_to(GrbType::Bool), Value::Bool(true));
        assert_eq!(Value::Bool(true).cast_to(GrbType::Fp32), Value::Fp32(1.0));
        assert_eq!(Value::Int32(7).cast_to(GrbType::Int32), Value::Int32(7));
    }

    #[test]
    fn negative_int_to_unsigned_wraps_modularly() {
        // C: (uint8_t)-1 == 255 — the conversion is modular, not
        // saturating, and must not round-trip through a float.
        assert_eq!(Value::Int32(-1).cast_to(GrbType::Uint8), Value::Uint8(255));
        assert_eq!(
            Value::Int64(-1).cast_to(GrbType::Uint64),
            Value::Uint64(u64::MAX)
        );
        assert_eq!(
            Value::Int16(-300).cast_to(GrbType::Uint8),
            Value::Uint8((-300i32 as u8 as i32) as u8) // 212
        );
        assert_eq!(Value::Int32(300).cast_to(GrbType::Int8), Value::Int8(44));
    }

    #[test]
    fn wide_int_casts_do_not_lose_precision() {
        // above 2^53 a through-f64 path would corrupt the low bits
        let big = (1i64 << 62) + 12345;
        assert_eq!(
            Value::Int64(big).cast_to(GrbType::Uint64),
            Value::Uint64(big as u64)
        );
        assert_eq!(
            Value::Uint64(u64::MAX).cast_to(GrbType::Int64),
            Value::Int64(-1)
        );
        assert_eq!(
            Value::Uint64(u64::MAX - 1).cast_to(GrbType::Uint32),
            Value::Uint32(u32::MAX - 1)
        );
    }

    #[test]
    fn float_to_int_truncates_saturates_and_zeroes_nan() {
        assert_eq!(Value::Fp64(-2.9).cast_to(GrbType::Int32), Value::Int32(-2));
        // out of range: saturate (C UB; pinned to Rust `as`)
        assert_eq!(Value::Fp64(1e30).cast_to(GrbType::Int8), Value::Int8(127));
        assert_eq!(Value::Fp64(-1e30).cast_to(GrbType::Uint8), Value::Uint8(0));
        assert_eq!(
            Value::Fp32(f32::NAN).cast_to(GrbType::Int64),
            Value::Int64(0)
        );
        assert_eq!(
            Value::Fp64(f64::INFINITY).cast_to(GrbType::Uint16),
            Value::Uint16(u16::MAX)
        );
    }

    #[test]
    fn int_float_round_trips() {
        for v in [0i64, 1, -1, 127, -128, 1 << 20, -(1 << 20)] {
            let f = Value::Int64(v).cast_to(GrbType::Fp64);
            assert_eq!(f.cast_to(GrbType::Int64), Value::Int64(v), "via {f:?}");
        }
        // bool round trip through every numeric domain
        for ty in [GrbType::Int8, GrbType::Uint32, GrbType::Fp32] {
            assert_eq!(
                Value::Bool(true).cast_to(ty).cast_to(GrbType::Bool),
                Value::Bool(true)
            );
        }
    }

    #[test]
    fn udt_rejects_implicit_casts_naming_both_domains() {
        let ty = udf::register_type("capi_test_pair", 16).unwrap();
        let v = Value::Udf(UdfValue::new(ty, &[0u8; 16]).unwrap());
        let e = v.try_cast_to(GrbType::Fp64).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        let msg = e.to_string();
        assert!(
            msg.contains("capi_test_pair") && msg.contains("GrB_FP64"),
            "{msg}"
        );
        // and the other direction
        let e = Value::Fp64(1.0).try_cast_to(GrbType::Udf(ty)).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // identity cast is fine
        assert_eq!(v.try_cast_to(GrbType::Udf(ty)).unwrap(), v);
    }

    #[test]
    fn udt_tags_and_masking() {
        let ty = udf::register_type("capi_test_tag", 2).unwrap();
        let v = Value::Udf(UdfValue::new(ty, &[0, 3]).unwrap());
        assert_eq!(v.type_of(), GrbType::Udf(ty));
        assert_eq!(v.type_of().c_name(), "capi_test_tag");
        assert!(v.type_of().is_udf());
        assert!(!v.type_of().is_numeric());
        assert!(v.as_bool(), "nonzero byte masks true");
        let z = Value::zero_of(GrbType::Udf(ty));
        assert!(!z.as_bool(), "all-zero bytes mask false");
        assert_eq!(z.as_udf().unwrap().bytes(), &[0, 0]);
    }

    #[test]
    fn as_bool_nonzero_rule() {
        assert!(Value::Int32(-5).as_bool());
        assert!(!Value::Fp64(0.0).as_bool());
        assert!(Value::Bool(true).as_bool());
        assert!(!Value::Uint64(0).as_bool());
    }

    #[test]
    fn zero_and_one() {
        assert_eq!(Value::zero_of(GrbType::Fp32), Value::Fp32(0.0));
        assert_eq!(Value::one_of(GrbType::Int64), Value::Int64(1));
        assert_eq!(Value::one_of(GrbType::Bool), Value::Bool(true));
    }
}
