//! Runtime algebra registration through the C-API facade: the
//! `GrB_Type_new` / `GrB_UnaryOp_new` / `GrB_BinaryOp_new` /
//! `GrB_Monoid_new` / `GrB_Semiring_new` surface over user functions
//! that work on **raw bytes** (the C contract: the library moves user
//! values around without interpreting them).
//!
//! [`grb_type_new`] registers a domain by name and byte size and hands
//! back a [`GrbTypeHandle`] — the facade's `GrB_Type`. Values of that
//! domain are opaque payloads wrapped in [`Value::Udf`]; the operator
//! constructors here wrap a byte-slice closure (C out-parameter shape
//! `f(z, x, y)`) into the same [`GrbBinaryOp`]/[`GrbUnaryOp`] objects
//! the predefined operators use, so a registered semiring is accepted
//! everywhere a built-in one is — the single dispatch path in
//! [`crate::operations`] never knows the difference.
//!
//! Mixed signatures are allowed: an operator may take user-struct inputs
//! and produce `GrB_FP64`, say. Built-in ends of a signature are bridged
//! through their native-endian byte representation, exactly what the C
//! API's `void*` calling convention hands a user function.

use graphblas_core::algebra::udf::{self, UdfBinary, UdfTypeId, UdfUnary, UdfValue};
use graphblas_core::error::{Error, Result};

use crate::ops::{GrbBinaryOp, GrbMonoid, GrbSemiring, GrbUnaryOp};
use crate::value::{GrbType, Value};

/// The facade's `GrB_Type` handle for a runtime-registered domain.
/// Copyable; identity is the registration (two `grb_type_new` calls are
/// distinct domains even with equal names and sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GrbTypeHandle {
    id: UdfTypeId,
}

/// `GrB_Type_new(&type, sizeof(user_struct))`: register a user-defined
/// domain. The name appears in `GrB_DOMAIN_MISMATCH` detail
/// (`GrB_error()`) and in the execution trace's erased-lane notes.
pub fn grb_type_new(name: &str, size: usize) -> Result<GrbTypeHandle> {
    Ok(GrbTypeHandle {
        id: udf::register_type(name, size)?,
    })
}

impl GrbTypeHandle {
    /// The domain tag to build collections with
    /// (`GrbMatrix::new(handle.ty(), …)`).
    pub fn ty(&self) -> GrbType {
        GrbType::Udf(self.id)
    }

    /// The core registry id (for direct `graphblas_core` use).
    pub fn id(&self) -> UdfTypeId {
        self.id
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// Registered byte size.
    pub fn size(&self) -> usize {
        self.id.size()
    }

    /// Wrap `bytes` as a [`Value`] of this domain (`GrB_*_setElement`
    /// with a user-defined scalar); the length must equal the registered
    /// size.
    pub fn value(&self, bytes: &[u8]) -> Result<Value> {
        Ok(Value::Udf(UdfValue::new(self.id, bytes)?))
    }

    /// Read a [`Value`] of this domain back as its raw payload
    /// (`GrB_*_extractElement` into a user buffer).
    pub fn read<'a>(&self, v: &'a Value) -> Result<&'a [u8]> {
        match v.as_udf() {
            Some(u) if u.ty() == self.id => Ok(u.bytes()),
            _ => Err(Error::DomainMismatch(format!(
                "value of domain {} read as {}",
                v.type_of().c_name(),
                self.name()
            ))),
        }
    }
}

/// The core registry id for any facade domain — the built-ins are
/// pre-registered in the core, so mixed signatures name their built-in
/// ends with the same machinery.
fn core_id(ty: GrbType) -> UdfTypeId {
    match ty {
        GrbType::Bool => udf::TYPE_BOOL,
        GrbType::Int8 => udf::TYPE_INT8,
        GrbType::Int16 => udf::TYPE_INT16,
        GrbType::Int32 => udf::TYPE_INT32,
        GrbType::Int64 => udf::TYPE_INT64,
        GrbType::Uint8 => udf::TYPE_UINT8,
        GrbType::Uint16 => udf::TYPE_UINT16,
        GrbType::Uint32 => udf::TYPE_UINT32,
        GrbType::Uint64 => udf::TYPE_UINT64,
        GrbType::Fp32 => udf::TYPE_FP32,
        GrbType::Fp64 => udf::TYPE_FP64,
        GrbType::Udf(id) => id,
    }
}

/// A value's raw bytes as a user function sees them: the opaque payload
/// for user-defined domains, the native-endian representation for
/// built-ins (the C `void*` convention).
fn value_bytes(v: &Value) -> Vec<u8> {
    match v {
        Value::Bool(b) => vec![*b as u8],
        Value::Int8(x) => x.to_ne_bytes().to_vec(),
        Value::Int16(x) => x.to_ne_bytes().to_vec(),
        Value::Int32(x) => x.to_ne_bytes().to_vec(),
        Value::Int64(x) => x.to_ne_bytes().to_vec(),
        Value::Uint8(x) => x.to_ne_bytes().to_vec(),
        Value::Uint16(x) => x.to_ne_bytes().to_vec(),
        Value::Uint32(x) => x.to_ne_bytes().to_vec(),
        Value::Uint64(x) => x.to_ne_bytes().to_vec(),
        Value::Fp32(x) => x.to_ne_bytes().to_vec(),
        Value::Fp64(x) => x.to_ne_bytes().to_vec(),
        Value::Udf(u) => u.bytes().to_vec(),
    }
}

/// Rebuild a [`Value`] of domain `ty` from raw bytes (the user
/// function's out-parameter). Length-checked against the domain size.
fn value_from_bytes(ty: GrbType, b: &[u8]) -> Result<Value> {
    let arr = |n: usize| -> Result<&[u8]> {
        if b.len() == n {
            Ok(b)
        } else {
            Err(Error::InvalidValue(format!(
                "{} bytes for domain {} of size {n}",
                b.len(),
                ty.c_name()
            )))
        }
    };
    Ok(match ty {
        GrbType::Bool => Value::Bool(arr(1)?[0] != 0),
        GrbType::Int8 => Value::Int8(i8::from_ne_bytes(arr(1)?.try_into().unwrap())),
        GrbType::Int16 => Value::Int16(i16::from_ne_bytes(arr(2)?.try_into().unwrap())),
        GrbType::Int32 => Value::Int32(i32::from_ne_bytes(arr(4)?.try_into().unwrap())),
        GrbType::Int64 => Value::Int64(i64::from_ne_bytes(arr(8)?.try_into().unwrap())),
        GrbType::Uint8 => Value::Uint8(u8::from_ne_bytes(arr(1)?.try_into().unwrap())),
        GrbType::Uint16 => Value::Uint16(u16::from_ne_bytes(arr(2)?.try_into().unwrap())),
        GrbType::Uint32 => Value::Uint32(u32::from_ne_bytes(arr(4)?.try_into().unwrap())),
        GrbType::Uint64 => Value::Uint64(u64::from_ne_bytes(arr(8)?.try_into().unwrap())),
        GrbType::Fp32 => Value::Fp32(f32::from_ne_bytes(arr(4)?.try_into().unwrap())),
        GrbType::Fp64 => Value::Fp64(f64::from_ne_bytes(arr(8)?.try_into().unwrap())),
        GrbType::Udf(id) => Value::Udf(UdfValue::new(id, b)?),
    })
}

/// `GrB_BinaryOp_new(&op, f, d3, d1, d2)`: a user function
/// `⊙ : D1 × D2 → D3` over raw bytes in the C out-parameter shape
/// `f(z, x, y)` (`z` arrives zeroed at `d3`'s registered size). The
/// result is an ordinary [`GrbBinaryOp`] usable in monoids, semirings,
/// as an accumulator, or as an eWise operator.
pub fn grb_binary_op_new(
    name: &str,
    d1: GrbType,
    d2: GrbType,
    d3: GrbType,
    f: impl Fn(&mut [u8], &[u8], &[u8]) + Send + Sync + 'static,
) -> GrbBinaryOp {
    let raw = UdfBinary::new(name, core_id(d1), core_id(d2), core_id(d3), f);
    let name = raw.name();
    GrbBinaryOp::new(name, d1, d2, d3, move |x, y| {
        let out = raw.apply_raw(&value_bytes(x), &value_bytes(y));
        value_from_bytes(d3, &out).expect("output buffer has the registered size")
    })
}

/// `GrB_UnaryOp_new(&op, f, d2, d1)`: a user function `f : D1 → D2`
/// over raw bytes in the C out-parameter shape `f(z, x)`.
pub fn grb_unary_op_new(
    name: &str,
    d1: GrbType,
    d2: GrbType,
    f: impl Fn(&mut [u8], &[u8]) + Send + Sync + 'static,
) -> GrbUnaryOp {
    let raw = UdfUnary::new(name, core_id(d1), core_id(d2), f);
    let name = raw.name();
    GrbUnaryOp::new(name, d1, d2, move |x| {
        let out = raw.apply_raw(&value_bytes(x));
        value_from_bytes(d2, &out).expect("output buffer has the registered size")
    })
}

/// `GrB_Monoid_new(&monoid, op, identity)` with the identity given as
/// raw bytes of the operator's domain (the C UDT calling convention).
pub fn grb_monoid_new(op: &GrbBinaryOp, identity: &[u8]) -> Result<GrbMonoid> {
    GrbMonoid::new(op.clone(), value_from_bytes(op.d1, identity)?)
}

/// `GxB_Monoid_terminal_new`: [`grb_monoid_new`] plus an absorbing
/// element — reductions may stop folding once the accumulation reaches
/// it (e.g. `0` for MIN over non-negative weights).
pub fn grb_monoid_terminal_new(
    op: &GrbBinaryOp,
    identity: &[u8],
    terminal: &[u8],
) -> Result<GrbMonoid> {
    grb_monoid_new(op, identity)?.with_terminal(value_from_bytes(op.d1, terminal)?)
}

/// `GrB_Semiring_new(&semiring, add_monoid, mul_op)` — identical to
/// [`GrbSemiring::new`]; provided so the registration surface spells
/// the whole Fig. 3 construction sequence in one vocabulary.
pub fn grb_semiring_new(add: GrbMonoid, mul: GrbBinaryOp) -> Result<GrbSemiring> {
    GrbSemiring::new(add, mul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::{GrbMatrix, GrbVector};
    use crate::context::with_session;
    use crate::operations;
    use graphblas_core::algebra::binary::BinaryOp;
    use graphblas_core::descriptor::Descriptor;
    use graphblas_core::exec::Mode;

    fn b(v: i64) -> [u8; 8] {
        v.to_ne_bytes()
    }

    fn plus(ty: GrbType) -> GrbBinaryOp {
        grb_binary_op_new("udf_plus_i64", ty, ty, ty, |z, x, y| {
            let a = i64::from_ne_bytes(x.try_into().unwrap());
            let c = i64::from_ne_bytes(y.try_into().unwrap());
            z.copy_from_slice(&a.wrapping_add(c).to_ne_bytes());
        })
    }

    #[test]
    fn handle_round_trip_and_read_checks() {
        let t = grb_type_new("capi_udf_pair", 16).unwrap();
        assert_eq!(t.name(), "capi_udf_pair");
        assert_eq!(t.size(), 16);
        assert_eq!(t.ty().c_name(), "capi_udf_pair");
        let v = t.value(&[7u8; 16]).unwrap();
        assert_eq!(t.read(&v).unwrap(), &[7u8; 16]);
        assert!(t.value(&[0u8; 3]).is_err(), "length-checked");
        // reading a foreign domain names both sides
        let other = grb_type_new("capi_udf_other", 16).unwrap();
        let e = other.read(&v).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("capi_udf_pair") && msg.contains("capi_udf_other"),
            "{msg}"
        );
    }

    #[test]
    fn mixed_signature_bridges_builtin_bytes() {
        // user-struct × user-struct → GrB_FP64: the built-in end rides
        // its native-endian representation
        let t = grb_type_new("capi_udf_vec2", 16).unwrap();
        let dot = grb_binary_op_new("udf_dot2", t.ty(), t.ty(), GrbType::Fp64, |z, x, y| {
            let f =
                |b: &[u8], i: usize| f64::from_ne_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
            let d = f(x, 0) * f(y, 0) + f(x, 1) * f(y, 1);
            z.copy_from_slice(&d.to_ne_bytes());
        });
        let enc = |a: f64, c: f64| {
            let mut out = [0u8; 16];
            out[..8].copy_from_slice(&a.to_ne_bytes());
            out[8..].copy_from_slice(&c.to_ne_bytes());
            t.value(&out).unwrap()
        };
        let got = dot
            .check_domains(t.ty(), t.ty(), GrbType::Fp64)
            .and(Ok(()))
            .map(|()| dot.as_dyn())
            .unwrap()
            .apply(&enc(1.0, 2.0), &enc(3.0, 4.0));
        assert_eq!(got, Value::Fp64(11.0));
    }

    #[test]
    fn registered_semiring_runs_the_dispatch_path() {
        with_session(Mode::Nonblocking, || {
            let t = grb_type_new("capi_udf_wrapped_i64", 8).unwrap();
            let times = grb_binary_op_new("udf_times_i64", t.ty(), t.ty(), t.ty(), |z, x, y| {
                let a = i64::from_ne_bytes(x.try_into().unwrap());
                let c = i64::from_ne_bytes(y.try_into().unwrap());
                z.copy_from_slice(&a.wrapping_mul(c).to_ne_bytes());
            });
            let add = grb_monoid_new(&plus(t.ty()), &b(0)).unwrap();
            let sr = grb_semiring_new(add.clone(), times).unwrap();

            let a = GrbMatrix::new(t.ty(), 2, 2).unwrap();
            a.set(0, 0, t.value(&b(2)).unwrap()).unwrap();
            a.set(0, 1, t.value(&b(3)).unwrap()).unwrap();
            a.set(1, 1, t.value(&b(4)).unwrap()).unwrap();
            let u = GrbVector::new(t.ty(), 2).unwrap();
            u.set(0, t.value(&b(10)).unwrap()).unwrap();
            u.set(1, t.value(&b(100)).unwrap()).unwrap();
            let w = GrbVector::new(t.ty(), 2).unwrap();
            operations::mxv(&w, None, None, &sr, &a, &u, &Descriptor::default()).unwrap();
            assert_eq!(t.read(&w.get(0).unwrap().unwrap()).unwrap(), &b(320));
            assert_eq!(t.read(&w.get(1).unwrap().unwrap()).unwrap(), &b(400));

            // reduce through the registered monoid
            let s = operations::reduce_vector_scalar(&add, &w).unwrap();
            assert_eq!(t.read(&s).unwrap(), &b(720));
        })
        .unwrap();
    }

    #[test]
    fn terminal_monoid_constructs_and_short_circuits_semantically() {
        let t = grb_type_new("capi_udf_min_i64", 8).unwrap();
        let min = grb_binary_op_new("udf_min_i64", t.ty(), t.ty(), t.ty(), |z, x, y| {
            let a = i64::from_ne_bytes(x.try_into().unwrap());
            let c = i64::from_ne_bytes(y.try_into().unwrap());
            z.copy_from_slice(&a.min(c).to_ne_bytes());
        });
        let m = grb_monoid_terminal_new(&min, &b(i64::MAX), &b(0)).unwrap();
        assert_eq!(m.terminal, Some(value_from_bytes(t.ty(), &b(0)).unwrap()));
        use graphblas_core::algebra::monoid::Monoid;
        let dynm = m.as_dyn();
        assert!(dynm.is_terminal(&t.value(&b(0)).unwrap()));
        assert!(!dynm.is_terminal(&t.value(&b(5)).unwrap()));
        // wrong-domain terminal is a construction error
        let e = grb_monoid_terminal_new(&min, &b(i64::MAX), &[0u8; 4]).unwrap_err();
        assert!(e.to_string().contains("capi_udf_min_i64"), "{e}");
    }

    #[test]
    fn udt_operands_must_match_the_operator_domains() {
        with_session(Mode::Blocking, || {
            let t = grb_type_new("capi_udf_strict_a", 8).unwrap();
            let other = grb_type_new("capi_udf_strict_b", 8).unwrap();
            let add = grb_monoid_new(&plus(t.ty()), &b(0)).unwrap();
            let sr = grb_semiring_new(add, plus(t.ty())).unwrap();
            // operand of a *different* UDT: DOMAIN_MISMATCH naming both
            let a = GrbMatrix::new(other.ty(), 2, 2).unwrap();
            let u = GrbVector::new(t.ty(), 2).unwrap();
            let w = GrbVector::new(t.ty(), 2).unwrap();
            let e =
                operations::mxv(&w, None, None, &sr, &a, &u, &Descriptor::default()).unwrap_err();
            assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
            let msg = e.to_string();
            assert!(
                msg.contains("capi_udf_strict_a") && msg.contains("capi_udf_strict_b"),
                "{msg}"
            );
        })
        .unwrap();
    }
}
