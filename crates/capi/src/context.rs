//! The process-global context lifecycle of the C API (paper §IV):
//! `GrB_init(mode)` establishes the execution context once, before any
//! other method; `GrB_finalize()` tears it down.
//!
//! Documented deviation (DESIGN.md): the paper forbids any re-`init`
//! after `finalize` for the lifetime of the process. A Rust test binary
//! runs many independent sessions in one process, so this facade allows
//! `init` again *after* a `finalize` — but still rejects a second `init`
//! while a context is live, which is the behaviourally observable part
//! of the rule. [`with_session`] packages the lock-init-run-finalize
//! pattern for embedders and tests.

use graphblas_core::error::{Error, Result};
use graphblas_core::exec::{Context, FusePolicy, Mode, SchedPolicy, TraceEvent};
use graphblas_core::par;
use graphblas_core::storage::{delta, engine, snapshot};
use parking_lot::{Mutex, ReentrantMutex};

use crate::options::{GxbOption, GxbScope, GxbValue};

static GLOBAL: Mutex<Option<Context>> = Mutex::new(None);
/// Serializes whole sessions (init → … → finalize) across threads.
static SESSION: ReentrantMutex<()> = ReentrantMutex::new(());

/// Builder for establishing the process-global context — the single
/// init path of this binding.
///
/// Only the mode is mandatory; every knob defaults to the engine
/// default and reads as a method chain:
///
/// ```
/// use graphblas_capi as capi;
/// use capi::{Config, FusePolicy, Mode, SchedPolicy};
///
/// # capi::context::session_guard_for_doctest(|| {
/// capi::Config::new(Mode::Nonblocking)
///     .sched(SchedPolicy::Sequential) // wait() drain policy
///     .fuse(FusePolicy::Off)          // §IV rewrite pass
///     .parallelism(4)                 // intra-kernel chunk degree
///     .init()
///     .unwrap();
/// // … GraphBLAS calls …
/// capi::finalize().unwrap();
/// # });
/// ```
///
/// * [`Config::sched`] — how `GrB_wait()` drains the pending DAG
///   (sequential FIFO or the shared worker pool).
/// * [`Config::fuse`] — whether the §IV fusion pass may rewrite the
///   DAG before execution.
/// * [`Config::parallelism`] — the default intra-kernel data-parallel
///   degree (how many row chunks a large kernel fans out to the shared
///   pool); unset means auto (`GRB_THREADS`/`GRB_TEST_THREADS`, then
///   the hardware's parallelism). [`finalize`] restores auto.
/// * [`Config::delta_run_cap`] — the pending-update tail-seal cap
///   (`GxB`-style storage knob); unset means `GRB_DELTA_RUN_CAP`, then
///   the engine default. [`finalize`] restores auto.
/// * [`Config::flush_window_ms`] — the background auto-flush time
///   window; `0` disables the time trigger. Unset means
///   `GRB_FLUSH_WINDOW_MS`, then the engine default. [`finalize`]
///   restores auto.
#[derive(Debug, Clone)]
#[must_use = "the builder does nothing until .init() is called"]
pub struct Config {
    mode: Mode,
    sched: SchedPolicy,
    fuse: FusePolicy,
    parallelism: Option<usize>,
    delta_run_cap: Option<usize>,
    flush_window_ms: Option<u64>,
}

impl Config {
    /// Start a configuration for `GrB_init(mode)` with default knobs.
    pub fn new(mode: Mode) -> Self {
        Config {
            mode,
            sched: SchedPolicy::default(),
            fuse: FusePolicy::default(),
            parallelism: None,
            delta_run_cap: None,
            flush_window_ms: None,
        }
    }

    /// Pin the `wait()` scheduling policy (the C API's `GxB_init`-style
    /// extension point).
    pub fn sched(mut self, policy: SchedPolicy) -> Self {
        self.sched = policy;
        self
    }

    /// Pin the fusion policy. `FusePolicy::Off` is the ablation
    /// baseline: `GrB_wait()` executes the sequence as written, with no
    /// §IV rewrites.
    pub fn fuse(mut self, fuse: FusePolicy) -> Self {
        self.fuse = fuse;
        self
    }

    /// Set the default intra-kernel parallelism degree (`k >= 1`;
    /// `k == 1` keeps every kernel on its serial path). Out-of-range
    /// values are rejected at [`Config::init`].
    pub fn parallelism(mut self, k: usize) -> Self {
        self.parallelism = Some(k);
        self
    }

    /// Set the pending-update tail-seal cap for this session (`k >= 1`;
    /// out-of-range values are rejected at [`Config::init`]). Smaller
    /// caps seal (and auto-flush) sooner; larger caps batch more per
    /// merge.
    pub fn delta_run_cap(mut self, cap: usize) -> Self {
        self.delta_run_cap = Some(cap);
        self
    }

    /// Set the background auto-flush time window for this session, in
    /// milliseconds. `0` disables the time trigger entirely (the size
    /// trigger still applies).
    pub fn flush_window_ms(mut self, ms: u64) -> Self {
        self.flush_window_ms = Some(ms);
        self
    }

    /// `GrB_init` with this configuration. Fails with
    /// `GrB_INVALID_VALUE` if a context is already established or the
    /// configuration is malformed.
    pub fn init(self) -> Result<()> {
        if self.parallelism == Some(0) {
            return Err(Error::InvalidValue(
                "Config::parallelism must be >= 1 (unset means auto)".into(),
            ));
        }
        if self.delta_run_cap == Some(0) {
            return Err(Error::InvalidValue(
                "Config::delta_run_cap must be >= 1 (unset means auto)".into(),
            ));
        }
        let mut g = GLOBAL.lock();
        if g.is_some() {
            return Err(Error::InvalidValue(
                "GrB_init called while a context is already established".into(),
            ));
        }
        par::set_default_parallelism(self.parallelism);
        // The storage knobs route through the unified option surface —
        // the builder fields are sugar over GxB_set(Global, …).
        crate::options::gxb_set(
            GxbScope::Global,
            GxbOption::DeltaRunCap,
            GxbValue::Count(self.delta_run_cap),
        )?;
        crate::options::gxb_set(
            GxbScope::Global,
            GxbOption::FlushWindowMs,
            GxbValue::Millis(self.flush_window_ms),
        )?;
        *g = Some(Context::with_fuse_policy(self.mode, self.sched, self.fuse));
        Ok(())
    }
}

/// `GrB_finalize()`. Fails if no context is established. Also restores
/// every session knob ([`Config::parallelism`],
/// [`Config::delta_run_cap`], [`Config::flush_window_ms`], and anything
/// set through [`gxb_set`](crate::gxb_set) at
/// [`Global`](crate::GxbScope::Global) scope) to auto, so pinned values
/// cannot leak into the next session.
pub fn finalize() -> Result<()> {
    let mut g = GLOBAL.lock();
    if g.take().is_none() {
        return Err(Error::UninitializedObject(
            "GrB_finalize called without GrB_init".into(),
        ));
    }
    par::set_default_parallelism(None);
    delta::set_session_run_cap(None);
    snapshot::set_session_flush_window_ms(None);
    engine::set_session_default_policy(graphblas_core::FormatPolicy::Auto);
    Ok(())
}

/// The live context, or `GrB_UNINITIALIZED_OBJECT` before `init`.
pub(crate) fn ctx() -> Result<Context> {
    GLOBAL
        .lock()
        .clone()
        .ok_or_else(|| Error::UninitializedObject("GraphBLAS is not initialized".into()))
}

/// `GrB_wait()`: terminate the current sequence (nonblocking mode).
pub fn wait() -> Result<()> {
    ctx()?.wait()
}

/// `GrB_error()`: detail text of the most recent error — API *or*
/// execution — reported through this facade (§V elaborates on "the
/// last method" without distinguishing the two classes).
pub fn error() -> Option<String> {
    ctx().ok().and_then(|c| c.error())
}

/// Run an operation body and mirror any API error it returns into the
/// context's `GrB_error()` string. Execution errors record themselves
/// at completion; this covers the codes returned straight from the
/// method call (dimension/domain mismatches, invalid values, …).
pub(crate) fn record_api<R>(ctx: &Context, f: impl FnOnce() -> Result<R>) -> Result<R> {
    let r = f();
    if let Err(e) = &r {
        ctx.record_api_error(e);
    }
    r
}

/// Test hook mirroring the core context's fault injector: the next
/// submitted operation fails with `e` at execution time (reachable
/// execution errors for §V tests).
pub fn inject_fault(e: graphblas_core::error::Error) -> Result<()> {
    ctx()?.inject_fault(e);
    Ok(())
}

/// The established mode, if any (diagnostic).
pub fn current_mode() -> Option<Mode> {
    GLOBAL.lock().as_ref().map(|c| c.mode())
}

/// Enable or disable execution tracing on the live context: while on,
/// each `wait()` records one [`TraceEvent`] per scheduled node.
pub fn enable_trace(on: bool) -> Result<()> {
    ctx()?.enable_trace(on);
    Ok(())
}

/// Drain the execution trace accumulated since the last call.
pub fn take_trace() -> Result<Vec<TraceEvent>> {
    Ok(ctx()?.take_trace())
}

/// Take the session lock without initializing (crate-internal: lets
/// tests assert uninitialized-state behaviour race-free).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn session_lock() -> parking_lot::ReentrantMutexGuard<'static, ()> {
    SESSION.lock()
}

/// Run `f` with the session machinery locked and **no** context
/// established — the race-free way for tests to assert
/// `GrB_UNINITIALIZED_OBJECT` behaviour.
pub fn with_no_session<R>(f: impl FnOnce() -> R) -> Result<R> {
    let _guard = SESSION.lock();
    if GLOBAL.lock().is_some() {
        return Err(Error::InvalidValue(
            "a context is unexpectedly established".into(),
        ));
    }
    Ok(f())
}

/// Run `f` inside a serialized init/finalize session — the supported way
/// to use the global API from multi-threaded test binaries.
pub fn with_session<R>(mode: Mode, f: impl FnOnce() -> R) -> Result<R> {
    with_session_config(Config::new(mode), f)
}

/// [`with_session`] with explicit scheduling and fusion policies.
pub fn with_session_policies<R>(
    mode: Mode,
    policy: SchedPolicy,
    fuse: FusePolicy,
    f: impl FnOnce() -> R,
) -> Result<R> {
    with_session_config(Config::new(mode).sched(policy).fuse(fuse), f)
}

/// [`with_session`] with a full [`Config`]: serialized
/// `config.init()` → `f()` → `finalize()`.
pub fn with_session_config<R>(config: Config, f: impl FnOnce() -> R) -> Result<R> {
    let _guard = SESSION.lock();
    config.init()?;
    let r = f();
    finalize()?;
    Ok(r)
}

/// Doctest support: run `f` holding the session lock (hidden — doctests
/// are separate processes but share this one's conventions).
#[doc(hidden)]
pub fn session_guard_for_doctest(f: impl FnOnce()) {
    let _guard = SESSION.lock();
    f();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_rules() {
        let _guard = SESSION.lock();
        // not initialized yet
        assert!(matches!(ctx(), Err(Error::UninitializedObject(_))));
        assert!(finalize().is_err());
        Config::new(Mode::Blocking).init().unwrap();
        assert_eq!(current_mode(), Some(Mode::Blocking));
        // double init rejected while live
        assert!(matches!(
            Config::new(Mode::Blocking).init(),
            Err(Error::InvalidValue(_))
        ));
        assert!(ctx().is_ok());
        finalize().unwrap();
        assert!(ctx().is_err());
        // re-init after finalize allowed (documented deviation)
        Config::new(Mode::Nonblocking).init().unwrap();
        assert_eq!(current_mode(), Some(Mode::Nonblocking));
        finalize().unwrap();
    }

    #[test]
    fn config_parallelism_knob_scoped_to_session() {
        let _guard = SESSION.lock();
        assert_eq!(par::default_parallelism(), None);
        Config::new(Mode::Blocking).parallelism(3).init().unwrap();
        assert_eq!(par::default_parallelism(), Some(3));
        finalize().unwrap();
        // finalize restores auto — the knob cannot leak across sessions
        assert_eq!(par::default_parallelism(), None);
    }

    #[test]
    fn config_rejects_zero_parallelism() {
        let _guard = SESSION.lock();
        assert!(matches!(
            Config::new(Mode::Blocking).parallelism(0).init(),
            Err(Error::InvalidValue(_))
        ));
        assert!(ctx().is_err());
    }

    #[test]
    fn config_delta_knobs_scoped_to_session() {
        let _guard = SESSION.lock();
        assert_eq!(delta::session_run_cap(), None);
        assert_eq!(snapshot::session_flush_window_ms(), None);
        Config::new(Mode::Blocking)
            .delta_run_cap(16)
            .flush_window_ms(50)
            .init()
            .unwrap();
        assert_eq!(delta::session_run_cap(), Some(16));
        assert_eq!(delta::run_cap(), 16);
        assert_eq!(snapshot::session_flush_window_ms(), Some(50));
        assert_eq!(
            snapshot::flush_window(),
            Some(std::time::Duration::from_millis(50))
        );
        finalize().unwrap();
        // finalize restores auto — the knobs cannot leak across sessions
        assert_eq!(delta::session_run_cap(), None);
        assert_eq!(snapshot::session_flush_window_ms(), None);
    }

    #[test]
    fn config_flush_window_zero_disables_time_trigger() {
        let _guard = SESSION.lock();
        Config::new(Mode::Blocking)
            .flush_window_ms(0)
            .init()
            .unwrap();
        assert_eq!(snapshot::flush_window(), None);
        finalize().unwrap();
    }

    #[test]
    fn config_rejects_zero_delta_run_cap() {
        let _guard = SESSION.lock();
        assert!(matches!(
            Config::new(Mode::Blocking).delta_run_cap(0).init(),
            Err(Error::InvalidValue(_))
        ));
        assert!(ctx().is_err());
    }

    #[test]
    fn builder_covers_former_shim_configurations() {
        // each former pre-builder shim spelling, as a Config chain
        let _guard = SESSION.lock();
        Config::new(Mode::Blocking).init().unwrap();
        assert_eq!(current_mode(), Some(Mode::Blocking));
        finalize().unwrap();
        Config::new(Mode::Nonblocking)
            .sched(SchedPolicy::Sequential)
            .init()
            .unwrap();
        finalize().unwrap();
        Config::new(Mode::Nonblocking)
            .sched(SchedPolicy::Sequential)
            .fuse(FusePolicy::Off)
            .init()
            .unwrap();
        finalize().unwrap();
    }

    #[test]
    fn with_session_wraps_lifecycle() {
        let out = with_session(Mode::Blocking, || {
            assert!(ctx().is_ok());
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        let _guard = SESSION.lock();
        assert!(ctx().is_err());
    }

    #[test]
    fn wait_and_error_without_init() {
        let _guard = SESSION.lock();
        assert!(wait().is_err());
        assert_eq!(error(), None);
    }
}
