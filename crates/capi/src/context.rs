//! The process-global context lifecycle of the C API (paper §IV):
//! `GrB_init(mode)` establishes the execution context once, before any
//! other method; `GrB_finalize()` tears it down.
//!
//! Documented deviation (DESIGN.md): the paper forbids any re-`init`
//! after `finalize` for the lifetime of the process. A Rust test binary
//! runs many independent sessions in one process, so this facade allows
//! `init` again *after* a `finalize` — but still rejects a second `init`
//! while a context is live, which is the behaviourally observable part
//! of the rule. [`with_session`] packages the lock-init-run-finalize
//! pattern for embedders and tests.

use graphblas_core::error::{Error, Result};
use graphblas_core::exec::{Context, FusePolicy, Mode, SchedPolicy, TraceEvent};
use parking_lot::{Mutex, ReentrantMutex};

static GLOBAL: Mutex<Option<Context>> = Mutex::new(None);
/// Serializes whole sessions (init → … → finalize) across threads.
static SESSION: ReentrantMutex<()> = ReentrantMutex::new(());

/// `GrB_init(mode)`. Fails with `GrB_INVALID_VALUE` if a context is
/// already established. Nonblocking mode gets the default scheduling
/// policy (parallel when the core's `parallel` feature is enabled);
/// use [`init_with_policy`] to pin one.
pub fn init(mode: Mode) -> Result<()> {
    init_with_policy(mode, SchedPolicy::default())
}

/// `GrB_init` with an explicit `wait()` scheduling policy — the
/// binding's rendering of an implementation-defined init descriptor
/// (the C API's `GxB_init`-style extension point).
pub fn init_with_policy(mode: Mode, policy: SchedPolicy) -> Result<()> {
    init_with_fuse_policy(mode, policy, FusePolicy::default())
}

/// `GrB_init` with explicit scheduling *and* fusion policies.
/// `FusePolicy::Off` pins the ablation baseline: `GrB_wait()` executes
/// the deferred sequence exactly as written, with no §IV rewrites.
pub fn init_with_fuse_policy(mode: Mode, policy: SchedPolicy, fuse: FusePolicy) -> Result<()> {
    let mut g = GLOBAL.lock();
    if g.is_some() {
        return Err(Error::InvalidValue(
            "GrB_init called while a context is already established".into(),
        ));
    }
    *g = Some(Context::with_fuse_policy(mode, policy, fuse));
    Ok(())
}

/// `GrB_finalize()`. Fails if no context is established.
pub fn finalize() -> Result<()> {
    let mut g = GLOBAL.lock();
    if g.take().is_none() {
        return Err(Error::UninitializedObject(
            "GrB_finalize called without GrB_init".into(),
        ));
    }
    Ok(())
}

/// The live context, or `GrB_UNINITIALIZED_OBJECT` before `init`.
pub(crate) fn ctx() -> Result<Context> {
    GLOBAL
        .lock()
        .clone()
        .ok_or_else(|| Error::UninitializedObject("GraphBLAS is not initialized".into()))
}

/// `GrB_wait()`: terminate the current sequence (nonblocking mode).
pub fn wait() -> Result<()> {
    ctx()?.wait()
}

/// `GrB_error()`: detail text of the most recent error — API *or*
/// execution — reported through this facade (§V elaborates on "the
/// last method" without distinguishing the two classes).
pub fn error() -> Option<String> {
    ctx().ok().and_then(|c| c.error())
}

/// Run an operation body and mirror any API error it returns into the
/// context's `GrB_error()` string. Execution errors record themselves
/// at completion; this covers the codes returned straight from the
/// method call (dimension/domain mismatches, invalid values, …).
pub(crate) fn record_api<R>(ctx: &Context, f: impl FnOnce() -> Result<R>) -> Result<R> {
    let r = f();
    if let Err(e) = &r {
        ctx.record_api_error(e);
    }
    r
}

/// Test hook mirroring the core context's fault injector: the next
/// submitted operation fails with `e` at execution time (reachable
/// execution errors for §V tests).
pub fn inject_fault(e: graphblas_core::error::Error) -> Result<()> {
    ctx()?.inject_fault(e);
    Ok(())
}

/// The established mode, if any (diagnostic).
pub fn current_mode() -> Option<Mode> {
    GLOBAL.lock().as_ref().map(|c| c.mode())
}

/// Enable or disable execution tracing on the live context: while on,
/// each `wait()` records one [`TraceEvent`] per scheduled node.
pub fn enable_trace(on: bool) -> Result<()> {
    ctx()?.enable_trace(on);
    Ok(())
}

/// Drain the execution trace accumulated since the last call.
pub fn take_trace() -> Result<Vec<TraceEvent>> {
    Ok(ctx()?.take_trace())
}

/// Take the session lock without initializing (crate-internal: lets
/// tests assert uninitialized-state behaviour race-free).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn session_lock() -> parking_lot::ReentrantMutexGuard<'static, ()> {
    SESSION.lock()
}

/// Run `f` with the session machinery locked and **no** context
/// established — the race-free way for tests to assert
/// `GrB_UNINITIALIZED_OBJECT` behaviour.
pub fn with_no_session<R>(f: impl FnOnce() -> R) -> Result<R> {
    let _guard = SESSION.lock();
    if GLOBAL.lock().is_some() {
        return Err(Error::InvalidValue(
            "a context is unexpectedly established".into(),
        ));
    }
    Ok(f())
}

/// Run `f` inside a serialized init/finalize session — the supported way
/// to use the global API from multi-threaded test binaries.
pub fn with_session<R>(mode: Mode, f: impl FnOnce() -> R) -> Result<R> {
    with_session_policies(mode, SchedPolicy::default(), FusePolicy::default(), f)
}

/// [`with_session`] with explicit scheduling and fusion policies.
pub fn with_session_policies<R>(
    mode: Mode,
    policy: SchedPolicy,
    fuse: FusePolicy,
    f: impl FnOnce() -> R,
) -> Result<R> {
    let _guard = SESSION.lock();
    init_with_fuse_policy(mode, policy, fuse)?;
    let r = f();
    finalize()?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_rules() {
        let _guard = SESSION.lock();
        // not initialized yet
        assert!(matches!(ctx(), Err(Error::UninitializedObject(_))));
        assert!(finalize().is_err());
        init(Mode::Blocking).unwrap();
        assert_eq!(current_mode(), Some(Mode::Blocking));
        // double init rejected while live
        assert!(matches!(init(Mode::Blocking), Err(Error::InvalidValue(_))));
        assert!(ctx().is_ok());
        finalize().unwrap();
        assert!(ctx().is_err());
        // re-init after finalize allowed (documented deviation)
        init(Mode::Nonblocking).unwrap();
        assert_eq!(current_mode(), Some(Mode::Nonblocking));
        finalize().unwrap();
    }

    #[test]
    fn with_session_wraps_lifecycle() {
        let out = with_session(Mode::Blocking, || {
            assert!(ctx().is_ok());
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        let _guard = SESSION.lock();
        assert!(ctx().is_err());
    }

    #[test]
    fn wait_and_error_without_init() {
        let _guard = SESSION.lock();
        assert!(wait().is_err());
        assert_eq!(error(), None);
    }
}
