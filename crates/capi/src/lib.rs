//! # graphblas-capi
//!
//! A dynamically-typed facade over `graphblas-core` that mirrors the
//! *shape* of the GraphBLAS **C** API the paper specifies: opaque
//! handles carrying runtime domain tags ([`GrbMatrix`], [`GrbVector`]),
//! runtime-composed algebraic objects ([`GrbMonoid`], [`GrbSemiring`] —
//! `GrB_Monoid_new` / `GrB_Semiring_new`), `GrB_NULL`-style optional
//! mask/accumulator arguments, the process-global context lifecycle
//! (the [`Config`] builder → [`finalize`]), and the runtime
//! `GrB_DOMAIN_MISMATCH` errors that a statically-typed binding turns
//! into compile errors.
//!
//! Built by instantiating the typed core over the tagged-union
//! [`Value`] domain — which also exercises the core's user-defined-
//! domain capability end to end. It trades per-element tagging overhead
//! for C-faithful dynamic semantics; performance work belongs in the
//! typed core.
//!
//! The crate's integration tests include a transliteration of the
//! paper's Figure 3 `BC_update` against this facade.

pub mod collections;
pub mod context;
pub mod operations;
pub mod ops;
pub mod options;
pub mod udf;
pub mod value;

pub use collections::{
    GrbMatrix, GrbMatrixSnapshot, GrbVector, GrbVectorSnapshot, GXB_FORMAT_AUTO, GXB_FORMAT_BITMAP,
    GXB_FORMAT_CSC, GXB_FORMAT_CSR, GXB_FORMAT_HYPER, GXB_FORMAT_TILED,
};
pub use context::{
    current_mode, enable_trace, error, finalize, inject_fault, take_trace, wait, with_no_session,
    with_session, with_session_config, with_session_policies, Config,
};
pub use graphblas_core::descriptor::Descriptor;
pub use graphblas_core::error::{Error, Result};
pub use graphblas_core::exec::{FusePolicy, FusedNote, Mode, SchedPolicy, TraceEvent};
pub use graphblas_core::index::{Index, IndexSelection, ALL};
pub use graphblas_core::storage::{snapshot_stats, DeltaStats, SnapshotStats};
pub use graphblas_core::{Format, FormatPolicy};
pub use operations::*;
pub use ops::{GrbBinaryOp, GrbMonoid, GrbSelectOp, GrbSemiring, GrbUnaryOp};
pub use options::{gxb_get, gxb_set, GxbOption, GxbScope, GxbValue};
pub use udf::{
    grb_binary_op_new, grb_monoid_new, grb_monoid_terminal_new, grb_semiring_new, grb_type_new,
    grb_unary_op_new, GrbTypeHandle,
};
pub use value::{GrbType, Value};
