//! Admission control and weighted fair scheduling across tenants.
//!
//! ## Admission
//!
//! Two gates, both checked at submit time so a rejected request costs
//! nothing downstream:
//!
//! 1. **Per-tenant queue depth** — each tenant owns a bounded FIFO
//!    (`queue_cap`); a submit that finds it full is shed with the typed
//!    [`Reply::Overloaded`]. A
//!    flooding tenant therefore saturates *its own* queue and nothing
//!    else.
//! 2. **Engine backlog** — if the shared worker pool's queue (observed
//!    through [`graphblas_core::exec::pool_status`]) is deeper than
//!    `pool_backlog_cap`, every tenant is shed until the engine drains;
//!    queueing more work when the compute layer is saturated only
//!    converts latency into memory.
//!
//! ## Fairness: stride scheduling
//!
//! Each tenant carries a virtual-time `pass`, advanced by
//! `STRIDE_ONE / weight` per request served. The scheduler always
//! serves the non-empty tenant with the smallest pass, so over any
//! window tenants receive service proportional to their weights, and a
//! tenant that floods its queue cannot starve a light one — its pass
//! races ahead and the light tenant's occasional requests are served
//! almost immediately. A tenant waking from idle rejoins at the current
//! virtual time (not its stale pass) so it cannot cash in idle credit
//! as a burst.
//!
//! ## Batching
//!
//! When the chosen request is a BFS, the scheduler sweeps *all* tenant
//! queues for other BFS requests against the same graph and hands the
//! executor one coalesced `Batch` (up to `batch_max`). The engine
//! answers the whole batch with one column-block frontier sweep
//! ([`graphblas_algorithms::bfs_multi`]) — the paper's §VII
//! multi-source trick: one `mxm` per level for the whole batch instead
//! of one per request. Every coalesced request still advances its own
//! tenant's pass, so batching never distorts the fairness accounting.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::protocol::{Reply, Request};
use crate::stats::{Histogram, TenantCounters};

/// Virtual-time advance for one request at weight 1.
const STRIDE_ONE: u64 = 1 << 20;

/// Shared, lock-free tenant telemetry (the scheduler's own state —
/// queue, pass — lives inside the scheduler lock).
pub struct Tenant {
    pub name: String,
    pub weight: u32,
    pub counters: TenantCounters,
    /// End-to-end request latency (submit → reply), nanoseconds.
    pub latency: Histogram,
}

/// One admitted request waiting for an executor.
pub(crate) struct Job {
    pub tenant: Arc<Tenant>,
    pub request: Request,
    pub submitted: Instant,
    pub slot: Arc<ReplySlot>,
}

/// A unit of executor work: either a single request or a coalesced
/// same-graph BFS batch.
pub(crate) struct Batch {
    pub jobs: Vec<Job>,
}

/// One-shot reply mailbox: the submitting thread blocks on `wait`, the
/// executor fills it exactly once.
pub struct ReplySlot {
    cell: Mutex<Option<Reply>>,
    ready: Condvar,
}

impl ReplySlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ReplySlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    pub(crate) fn fill(&self, reply: Reply) {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        *cell = Some(reply);
        self.ready.notify_all();
    }

    pub(crate) fn wait(&self) -> Reply {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = cell.take() {
                return r;
            }
            cell = self.ready.wait(cell).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Outcome of [`Scheduler::submit`].
pub(crate) enum Admit {
    /// Queued; block on the slot for the reply.
    Queued(Arc<ReplySlot>),
    /// Shed by admission control (per-tenant depth or engine backlog).
    Shed,
    /// The scheduler is shutting down.
    Closed,
}

struct TenantQ {
    meta: Arc<Tenant>,
    queue: VecDeque<Job>,
    pass: u64,
}

struct Inner {
    tenants: HashMap<String, TenantQ>,
    /// Total queued jobs across tenants (condvar predicate).
    queued: usize,
    /// Virtual time: pass of the most recently served tenant.
    vtime: u64,
    shutdown: bool,
}

/// Scheduler tunables (subset of `ServiceConfig`).
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Per-tenant queue bound; a full queue sheds.
    pub queue_cap: usize,
    /// Largest BFS batch to coalesce.
    pub batch_max: usize,
    /// Shed everyone while the engine pool backlog exceeds this.
    pub pool_backlog_cap: usize,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    ready: Condvar,
    cfg: SchedConfig,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                queued: 0,
                vtime: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            cfg,
        }
    }

    /// Get or create a tenant. The first registration fixes the weight;
    /// later calls return the existing tenant unchanged.
    pub fn register(&self, name: &str, weight: u32) -> Arc<Tenant> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let vtime = inner.vtime;
        let tq = inner
            .tenants
            .entry(name.to_string())
            .or_insert_with(|| TenantQ {
                meta: Arc::new(Tenant {
                    name: name.to_string(),
                    weight: weight.max(1),
                    counters: TenantCounters::default(),
                    latency: Histogram::new(),
                }),
                queue: VecDeque::new(),
                pass: vtime,
            });
        tq.meta.clone()
    }

    /// All registered tenants, sorted by name (for STATS rendering).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut ts: Vec<_> = inner.tenants.values().map(|q| q.meta.clone()).collect();
        ts.sort_by(|a, b| a.name.cmp(&b.name));
        ts
    }

    /// Admission-checked enqueue. The tenant must have been registered.
    pub fn submit(&self, tenant: &Arc<Tenant>, request: Request) -> Admit {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.shutdown {
            return Admit::Closed;
        }
        // gate 2: engine backlog (global)
        let backlog = graphblas_core::exec::pool_status().queued;
        let vtime = inner.vtime;
        let Some(tq) = inner.tenants.get_mut(&tenant.name) else {
            return Admit::Closed;
        };
        // gate 1: per-tenant queue depth
        if tq.queue.len() >= self.cfg.queue_cap || backlog > self.cfg.pool_backlog_cap {
            tq.meta
                .counters
                .shed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Admit::Shed;
        }
        if tq.queue.is_empty() {
            // waking from idle: rejoin at current virtual time so idle
            // periods don't accumulate into a service burst
            tq.pass = tq.pass.max(vtime);
        }
        let slot = ReplySlot::new();
        tq.queue.push_back(Job {
            tenant: tenant.clone(),
            request,
            submitted: Instant::now(),
            slot: slot.clone(),
        });
        inner.queued += 1;
        self.ready.notify_one();
        Admit::Queued(slot)
    }

    /// Block until work is available; `None` once shut down *and*
    /// drained (executors exit only after every queued job is served).
    pub fn next_batch(&self) -> Option<Batch> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.queued > 0 {
                return Some(Self::take_batch(&mut inner, &self.cfg));
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop the next job by stride order, then coalesce if it's a BFS.
    fn take_batch(inner: &mut Inner, cfg: &SchedConfig) -> Batch {
        // min-pass tenant among non-empty; name tie-break for determinism
        let name = inner
            .tenants
            .iter()
            .filter(|(_, q)| !q.queue.is_empty())
            .min_by_key(|(name, q)| (q.pass, name.as_str()))
            .map(|(name, _)| name.clone())
            .expect("queued > 0 implies a non-empty tenant queue");
        let tq = inner.tenants.get_mut(&name).expect("tenant exists");
        let job = tq.queue.pop_front().expect("non-empty");
        tq.pass += STRIDE_ONE / u64::from(tq.meta.weight);
        inner.vtime = tq.pass;
        inner.queued -= 1;
        let mut jobs = vec![job];
        if let Request::Bfs { graph, .. } = &jobs[0].request {
            let graph = graph.clone();
            // sweep every queue (the server's own included) for BFS
            // requests against the same graph, up to batch_max
            let mut names: Vec<String> = inner.tenants.keys().cloned().collect();
            names.sort(); // deterministic sweep order
            'outer: for n in names {
                let tq = inner.tenants.get_mut(&n).expect("tenant exists");
                let stride = STRIDE_ONE / u64::from(tq.meta.weight);
                let mut i = 0;
                while i < tq.queue.len() {
                    if jobs.len() >= cfg.batch_max {
                        break 'outer;
                    }
                    let coalesce = matches!(
                        &tq.queue[i].request,
                        Request::Bfs { graph: g, .. } if *g == graph
                    );
                    if coalesce {
                        let job = tq.queue.remove(i).expect("index in bounds");
                        // batched service is still service: charge it
                        tq.pass += stride;
                        inner.queued -= 1;
                        jobs.push(job);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        Batch { jobs }
    }

    /// Begin shutdown: new submits are `Closed`, executors drain what
    /// is queued and then exit.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(queue_cap: usize) -> Scheduler {
        Scheduler::new(SchedConfig {
            queue_cap,
            batch_max: 64,
            pool_backlog_cap: usize::MAX,
        })
    }

    fn degree_req(v: usize) -> Request {
        Request::Degree {
            graph: "g".into(),
            v,
        }
    }

    #[test]
    fn stride_serves_in_weight_proportion() {
        let s = sched(1000);
        let a = s.register("a", 1);
        let b = s.register("b", 3);
        for i in 0..80 {
            assert!(matches!(s.submit(&a, degree_req(i)), Admit::Queued(_)));
            assert!(matches!(s.submit(&b, degree_req(i)), Admit::Queued(_)));
        }
        let mut served_a = 0;
        let mut served_b = 0;
        for _ in 0..40 {
            let batch = s.next_batch().unwrap();
            assert_eq!(batch.jobs.len(), 1, "Degree must not batch");
            match batch.jobs[0].tenant.name.as_str() {
                "a" => served_a += 1,
                _ => served_b += 1,
            }
        }
        // weight 3 tenant gets ~3x the service of weight 1
        assert!((28..=32).contains(&served_b), "b served {served_b}");
        assert_eq!(served_a + served_b, 40);
    }

    #[test]
    fn full_queue_sheds_only_the_flooder() {
        let s = sched(4);
        let flood = s.register("flood", 1);
        let light = s.register("light", 1);
        let mut shed = 0;
        for i in 0..10 {
            if matches!(s.submit(&flood, degree_req(i)), Admit::Shed) {
                shed += 1;
            }
        }
        assert_eq!(shed, 6, "everything past queue_cap sheds");
        assert_eq!(
            flood
                .counters
                .shed
                .load(std::sync::atomic::Ordering::Relaxed),
            6
        );
        // the light tenant is untouched by the flooder's full queue
        assert!(matches!(s.submit(&light, degree_req(0)), Admit::Queued(_)));
    }

    #[test]
    fn bfs_on_same_graph_coalesces_across_tenants() {
        let s = sched(1000);
        let a = s.register("a", 1);
        let b = s.register("b", 1);
        for i in 0..5 {
            s.submit(
                &a,
                Request::Bfs {
                    graph: "g".into(),
                    src: i,
                },
            );
            s.submit(
                &b,
                Request::Bfs {
                    graph: "g".into(),
                    src: 100 + i,
                },
            );
        }
        // different graph and different request type must NOT coalesce
        s.submit(
            &a,
            Request::Bfs {
                graph: "other".into(),
                src: 0,
            },
        );
        s.submit(&b, degree_req(7));
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.jobs.len(), 10, "all same-graph BFS in one batch");
        assert!(batch
            .jobs
            .iter()
            .all(|j| matches!(&j.request, Request::Bfs { graph, .. } if graph == "g")));
        // the leftovers drain as singletons
        let rest: usize = std::iter::from_fn(|| {
            let b = s.next_batch()?;
            Some(b.jobs.len())
        })
        .take(2)
        .sum();
        assert_eq!(rest, 2);
    }

    #[test]
    fn batch_max_bounds_coalescing() {
        let s = Scheduler::new(SchedConfig {
            queue_cap: 1000,
            batch_max: 4,
            pool_backlog_cap: usize::MAX,
        });
        let a = s.register("a", 1);
        for i in 0..10 {
            s.submit(
                &a,
                Request::Bfs {
                    graph: "g".into(),
                    src: i,
                },
            );
        }
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.jobs.len(), 4);
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let s = sched(100);
        let a = s.register("a", 1);
        s.submit(&a, degree_req(0));
        s.shutdown();
        assert!(matches!(s.submit(&a, degree_req(1)), Admit::Closed));
        assert!(s.next_batch().is_some(), "queued job still drains");
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn reply_slot_delivers_across_threads() {
        let slot = ReplySlot::new();
        let s2 = slot.clone();
        let t = std::thread::spawn(move || s2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        slot.fill(Reply::Count(7));
        assert_eq!(t.join().unwrap(), Reply::Count(7));
    }
}
