//! The TCP front end: a thread-per-connection listener translating
//! framed protocol messages ([`crate::protocol`]) into
//! [`Service::submit`] calls.
//!
//! Thread-per-connection is the right shape here because connections
//! are *sessions*: each blocks on at most one in-flight request, so
//! thread count tracks concurrent clients, and the real concurrency
//! limit — the executor crew and the engine's worker pool — is managed
//! by the service behind admission control, not by the socket layer.
//! A connection must introduce its tenant (`HELLO <tenant> <weight>`)
//! before any data request.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::protocol::{read_frame, write_frame, Reply, Request};
use crate::service::Service;

/// A listening server. Dropping it does *not* stop the listener; call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections for `service`.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept = std::thread::Builder::new()
            .name("grb-server-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = service.clone();
                    // connection threads are detached: they exit on
                    // client EOF or I/O error
                    let _ = std::thread::Builder::new()
                        .name("grb-server-conn".into())
                        .spawn(move || connection(&service, stream));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread.
    /// Established connections drain on their own (client EOF).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // poke the listener so the accept loop observes the flag
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

/// Serve one connection to completion.
fn connection(service: &Service, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut tenant: Option<String> = None;
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let reply = match Request::parse(&payload) {
            Err(msg) => Reply::Err(msg),
            Ok(Request::Hello {
                tenant: name,
                weight,
            }) => {
                let r = service.submit(
                    &name,
                    Request::Hello {
                        tenant: name.clone(),
                        weight,
                    },
                );
                tenant = Some(name);
                r
            }
            Ok(req) => match &tenant {
                Some(t) => service.submit(t, req),
                None => Reply::Err("introduce yourself first: HELLO <tenant> <weight>".into()),
            },
        };
        if write_frame(&mut writer, &reply.render()).is_err() {
            break;
        }
    }
}

/// A minimal synchronous client for the framed protocol — what the
/// demo example, the tests, and external tooling use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect and introduce the tenant (`HELLO`).
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str, weight: u32) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut c = Client { reader, writer };
        match c.call(&Request::Hello {
            tenant: tenant.into(),
            weight,
        })? {
            Reply::Ok => Ok(c),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("HELLO rejected: {other:?}"),
            )),
        }
    }

    /// Send one request and block for its reply.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        write_frame(&mut self.writer, &request.render())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Reply::parse(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn tcp_round_trip() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let server = Server::bind("127.0.0.1:0", svc.clone()).unwrap();
        let mut c = Client::connect(server.addr(), "alice", 2).unwrap();
        assert_eq!(
            c.call(&Request::CreateGraph {
                graph: "g".into(),
                nodes: 4,
                tiles: None
            })
            .unwrap(),
            Reply::Ok
        );
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            c.call(&Request::AddEdge {
                graph: "g".into(),
                u,
                v,
            })
            .unwrap();
        }
        assert_eq!(
            c.call(&Request::Bfs {
                graph: "g".into(),
                src: 1
            })
            .unwrap(),
            Reply::Levels(vec![-1, 0, 1, 2])
        );
        assert_eq!(
            c.call(&Request::OneHop {
                graph: "g".into(),
                v: 1
            })
            .unwrap(),
            Reply::Ids(vec![2])
        );
        let Reply::Stats(report) = c.call(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert!(report.contains("tenant alice weight=2"), "{report}");
        server.shutdown();
        svc.shutdown();
    }

    #[test]
    fn data_requests_require_hello() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let server = Server::bind("127.0.0.1:0", svc.clone()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, "STATS").unwrap();
        let reply = read_frame(&mut reader).unwrap().unwrap();
        assert!(reply.starts_with("ERR "), "{reply}");
        server.shutdown();
        svc.shutdown();
    }
}
