//! The named-graph registry: each entry owns a Boolean adjacency
//! [`Matrix`] shared by every request that names it.
//!
//! Point writes (`EDGE+` / `EDGE-`) go straight to [`Matrix::set`] /
//! [`Matrix::remove`], i.e. into the engine's pending-update delta log
//! — O(1) amortized appends. Sealed runs are folded into the backing
//! store by the engine's windowed background flush (and compacted
//! LSM-style when they pile up), while readers take O(1) MVCC
//! snapshots and merge `(base, sealed runs)` lazily on their own
//! nodes. That is what keeps write latency flat under heavy read
//! traffic: a burst of inserts never rewrites the CSR once per edge,
//! and queries never force a drain of the writers' log.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use graphblas_core::prelude::*;

/// One named graph: a square Boolean adjacency matrix.
pub struct GraphEntry {
    pub name: String,
    pub nodes: usize,
    pub matrix: Matrix<bool>,
}

/// Concurrent name → graph map. Reads (every data request) take the
/// read lock only long enough to clone the `Arc`.
#[derive(Default)]
pub struct Registry {
    map: RwLock<HashMap<String, Arc<GraphEntry>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Create an empty graph. Errors if the name is taken or the size
    /// is zero (matrix dimensions must be positive). `tiles` shards the
    /// adjacency into a 2D tile grid up front (clamped to the matrix
    /// dimensions), so every later point write drains tile-granularly
    /// and traversals run the tiled kernels.
    pub fn create(
        &self,
        name: &str,
        nodes: usize,
        tiles: Option<(usize, usize)>,
    ) -> std::result::Result<(), String> {
        if nodes == 0 {
            return Err("graph must have at least one node".into());
        }
        let matrix = Matrix::<bool>::new(nodes, nodes).map_err(|e| e.to_string())?;
        if let Some((r, c)) = tiles {
            matrix.set_tile_shape(r, c).map_err(|e| e.to_string())?;
        }
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(format!("graph {name:?} already exists"));
        }
        map.insert(
            name.to_string(),
            Arc::new(GraphEntry {
                name: name.to_string(),
                nodes,
                matrix,
            }),
        );
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Every registered graph (STATS introspection).
    pub fn entries(&self) -> Vec<Arc<GraphEntry>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_and_duplicate() {
        let r = Registry::new();
        r.create("web", 10, None).unwrap();
        assert!(r.get("web").is_some());
        assert_eq!(r.get("web").unwrap().nodes, 10);
        assert!(r.get("nope").is_none());
        assert!(r.create("web", 5, None).is_err());
        assert!(r.create("zero", 0, None).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tiled_create_shards_the_adjacency() {
        let r = Registry::new();
        r.create("t", 16, Some((4, 4))).unwrap();
        let g = r.get("t").unwrap();
        assert_eq!(g.matrix.tile_shape(), Some((4, 4)));
        assert_eq!(g.matrix.format().unwrap(), Format::Tiled);
        // writes and reads work exactly as on a slab graph
        g.matrix.set(1, 13, true).unwrap();
        assert_eq!(g.matrix.get(1, 13).unwrap(), Some(true));
        // a grid wider than the matrix is rejected like any bad option
        assert!(r.create("bad", 4, Some((0, 2))).is_err());
    }

    #[test]
    fn point_writes_land_in_the_delta_log() {
        let r = Registry::new();
        r.create("g", 4, None).unwrap();
        let g = r.get("g").unwrap();
        g.matrix.set(0, 1, true).unwrap();
        g.matrix.set(1, 2, true).unwrap();
        assert_eq!(g.matrix.nvals().unwrap(), 2);
        g.matrix.remove(0, 1).unwrap();
        assert_eq!(g.matrix.get(0, 1).unwrap(), None);
    }
}
