//! Request execution against the GraphBLAS engine: every query is a
//! (small) GraphBLAS program over the named graph's adjacency matrix,
//! run on the service's shared blocking [`Context`] — which means the
//! heavy kernels inside (mxm, mxv, the delta-log overlay merge) fan out
//! onto the engine's shared worker pool exactly like library use.
//!
//! Every read (HAS/DEG/HOP/BFS/PR) runs against an MVCC **snapshot** of
//! the adjacency matrix pinned at the request's start: `EDGE+`/`EDGE-`
//! traffic keeps appending to the live handle's delta log (merged by
//! the engine's background auto-flusher) and never stalls a reader —
//! nor does a long PageRank ever stall ingest.
//!
//! The one batched path: a coalesced BFS [`Batch`] becomes a single
//! [`bfs_multi`] call — the §VII column-block frontier sweep — and the
//! per-source level vectors are demultiplexed back to the individual
//! requests' reply slots.

use std::sync::atomic::Ordering;

use graphblas_algorithms::{bfs_multi, pagerank};
use graphblas_core::prelude::*;

use crate::graphs::{GraphEntry, Registry};
use crate::protocol::{Reply, Request};
use crate::sched::{Batch, Job};
use crate::stats::ServiceStats;

/// Cap on PageRank power iterations a single request may demand.
const PR_MAX_ITERS: usize = 100;

/// Run one scheduler batch to completion, filling every job's reply
/// slot and recording per-tenant latency.
pub(crate) fn run_batch(ctx: &Context, graphs: &Registry, stats: &ServiceStats, batch: Batch) {
    let is_bfs_batch = batch
        .jobs
        .first()
        .is_some_and(|j| matches!(j.request, Request::Bfs { .. }));
    if is_bfs_batch {
        run_bfs_batch(ctx, graphs, stats, batch.jobs);
    } else {
        for job in batch.jobs {
            let reply = execute_one(ctx, graphs, &job.request);
            finish(job, reply);
        }
    }
}

/// Fill the slot and account the job done (latency + counters).
fn finish(job: Job, reply: Reply) {
    let counters = &job.tenant.counters;
    match &reply {
        Reply::Err(_) => counters.errors.fetch_add(1, Ordering::Relaxed),
        _ => counters.completed.fetch_add(1, Ordering::Relaxed),
    };
    job.tenant
        .latency
        .record(job.submitted.elapsed().as_nanos() as u64);
    job.slot.fill(reply);
}

/// The coalesced path: one `bfs_multi` for the whole same-graph batch.
fn run_bfs_batch(ctx: &Context, graphs: &Registry, stats: &ServiceStats, jobs: Vec<Job>) {
    let graph_name = match &jobs[0].request {
        Request::Bfs { graph, .. } => graph.clone(),
        _ => unreachable!("run_bfs_batch only receives BFS jobs"),
    };
    let Some(entry) = graphs.get(&graph_name) else {
        for job in jobs {
            finish(job, Reply::Err(format!("no such graph {graph_name:?}")));
        }
        return;
    };
    // per-request validation first, so one bad source cannot poison the
    // whole batch
    let mut valid: Vec<Job> = Vec::with_capacity(jobs.len());
    let mut sources: Vec<Index> = Vec::with_capacity(jobs.len());
    for job in jobs {
        match &job.request {
            Request::Bfs { src, .. } if *src < entry.nodes => {
                sources.push(*src);
                valid.push(job);
            }
            Request::Bfs { src, .. } => {
                let src = *src;
                finish(job, Reply::Err(format!("source {src} out of range")));
            }
            _ => unreachable!("run_bfs_batch only receives BFS jobs"),
        }
    }
    if valid.is_empty() {
        return;
    }
    stats.note_bfs_batch(valid.len());
    // One snapshot for the whole batch: every coalesced source sweeps
    // the same frozen adjacency, and concurrent EDGE+/- never stall it.
    let frozen = entry.matrix.snapshot().to_matrix();
    match bfs_multi(ctx, &frozen, &sources) {
        Ok(levels) => {
            for (job, per_source) in valid.into_iter().zip(levels) {
                let ls: Vec<i64> = per_source
                    .iter()
                    .map(|l| l.map_or(-1, |d| d as i64))
                    .collect();
                finish(job, Reply::Levels(ls));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for job in valid {
                finish(job, Reply::Err(msg.clone()));
            }
        }
    }
}

fn with_graph(graphs: &Registry, name: &str, f: impl FnOnce(&GraphEntry) -> Reply) -> Reply {
    match graphs.get(name) {
        Some(entry) => f(&entry),
        None => Reply::Err(format!("no such graph {name:?}")),
    }
}

fn check_bounds(entry: &GraphEntry, ids: &[Index]) -> Option<Reply> {
    ids.iter().find(|&&i| i >= entry.nodes).map(|&i| {
        Reply::Err(format!(
            "vertex {i} out of range (graph has {} nodes)",
            entry.nodes
        ))
    })
}

fn err_reply(e: Error) -> Reply {
    Reply::Err(e.to_string())
}

/// The out-neighborhood of `v` as a stored-index vector: one `vxm` of
/// the indicator vector against a snapshot of the adjacency (lor.land).
fn neighbors(ctx: &Context, entry: &GraphEntry, v: Index) -> Result<Vec<Index>> {
    let n = entry.nodes;
    let e = Vector::from_tuples(n, &[(v, true)])?;
    let w = Vector::<bool>::new(n)?;
    let frozen = entry.matrix.snapshot().to_matrix();
    ctx.vxm(
        &w,
        NoMask,
        NoAccum,
        lor_land(),
        &e,
        &frozen,
        &Descriptor::default().replace(),
    )?;
    Ok(w.extract_tuples()?.into_iter().map(|(i, _)| i).collect())
}

/// Execute one non-batched request.
pub(crate) fn execute_one(ctx: &Context, graphs: &Registry, request: &Request) -> Reply {
    match request {
        Request::AddEdge { graph, u, v } => with_graph(graphs, graph, |entry| {
            if let Some(r) = check_bounds(entry, &[*u, *v]) {
                return r;
            }
            // O(1) amortized: appends to the matrix's pending-update
            // delta log; merged at the next completion-forcing read
            match entry.matrix.set(*u, *v, true) {
                Ok(()) => Reply::Ok,
                Err(e) => err_reply(e),
            }
        }),
        Request::RemoveEdge { graph, u, v } => with_graph(graphs, graph, |entry| {
            if let Some(r) = check_bounds(entry, &[*u, *v]) {
                return r;
            }
            match entry.matrix.remove(*u, *v) {
                Ok(()) => Reply::Ok,
                Err(e) => err_reply(e),
            }
        }),
        Request::HasEdge { graph, u, v } => with_graph(graphs, graph, |entry| {
            if let Some(r) = check_bounds(entry, &[*u, *v]) {
                return r;
            }
            // Snapshot point probe: binary-searches the sealed runs and
            // falls back to the base — never drains the writers' log.
            match entry.matrix.snapshot().get(*u, *v) {
                Ok(x) => Reply::Bool(x.is_some()),
                Err(e) => err_reply(e),
            }
        }),
        Request::Degree { graph, v } => with_graph(graphs, graph, |entry| {
            if let Some(r) = check_bounds(entry, &[*v]) {
                return r;
            }
            match neighbors(ctx, entry, *v) {
                Ok(ids) => Reply::Count(ids.len() as u64),
                Err(e) => err_reply(e),
            }
        }),
        Request::OneHop { graph, v } => with_graph(graphs, graph, |entry| {
            if let Some(r) = check_bounds(entry, &[*v]) {
                return r;
            }
            match neighbors(ctx, entry, *v) {
                Ok(ids) => Reply::Ids(ids),
                Err(e) => err_reply(e),
            }
        }),
        Request::Bfs { .. } => {
            unreachable!("BFS is always routed through run_bfs_batch")
        }
        Request::Pagerank { graph, iters } => with_graph(graphs, graph, |entry| {
            let iters = (*iters).clamp(1, PR_MAX_ITERS);
            let frozen = entry.matrix.snapshot().to_matrix();
            match pagerank(ctx, &frozen, 0.85, 1e-9, iters) {
                Ok((ranks, _)) => Reply::Ranks(ranks),
                Err(e) => err_reply(e),
            }
        }),
        // control-plane requests are answered inline by the service
        Request::Hello { .. } | Request::CreateGraph { .. } | Request::Stats => {
            Reply::Err("control request reached the execution engine".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup() -> (Context, Registry) {
        let ctx = Context::blocking();
        let graphs = Registry::new();
        graphs.create("g", 6, None).unwrap();
        let g = graphs.get("g").unwrap();
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            g.matrix.set(u, v, true).unwrap();
        }
        (ctx, graphs)
    }

    #[test]
    fn point_ops_and_neighborhood() {
        let (ctx, graphs) = setup();
        let has = |u, v| {
            execute_one(
                &ctx,
                &graphs,
                &Request::HasEdge {
                    graph: "g".into(),
                    u,
                    v,
                },
            )
        };
        assert_eq!(has(0, 1), Reply::Bool(true));
        assert_eq!(has(1, 0), Reply::Bool(false));
        assert_eq!(
            execute_one(
                &ctx,
                &graphs,
                &Request::Degree {
                    graph: "g".into(),
                    v: 0
                }
            ),
            Reply::Count(2)
        );
        assert_eq!(
            execute_one(
                &ctx,
                &graphs,
                &Request::OneHop {
                    graph: "g".into(),
                    v: 0
                }
            ),
            Reply::Ids(vec![1, 2])
        );
        assert_eq!(
            execute_one(
                &ctx,
                &graphs,
                &Request::RemoveEdge {
                    graph: "g".into(),
                    u: 0,
                    v: 1
                }
            ),
            Reply::Ok
        );
        assert_eq!(has(0, 1), Reply::Bool(false));
    }

    #[test]
    fn missing_graph_and_bounds_are_typed_errors() {
        let (ctx, graphs) = setup();
        assert!(matches!(
            execute_one(
                &ctx,
                &graphs,
                &Request::Degree {
                    graph: "nope".into(),
                    v: 0
                }
            ),
            Reply::Err(_)
        ));
        assert!(matches!(
            execute_one(
                &ctx,
                &graphs,
                &Request::HasEdge {
                    graph: "g".into(),
                    u: 0,
                    v: 99
                }
            ),
            Reply::Err(_)
        ));
    }

    #[test]
    fn pagerank_runs_and_sums_to_one() {
        let (ctx, graphs) = setup();
        let Reply::Ranks(r) = execute_one(
            &ctx,
            &graphs,
            &Request::Pagerank {
                graph: "g".into(),
                iters: 30,
            },
        ) else {
            panic!("expected ranks")
        };
        assert_eq!(r.len(), 6);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
    }

    #[test]
    fn bfs_batch_demuxes_per_request() {
        use crate::sched::ReplySlot;
        use std::time::Instant;
        let (ctx, graphs) = setup();
        let stats = ServiceStats::default();
        let tenant = Arc::new(crate::sched::Tenant {
            name: "t".into(),
            weight: 1,
            counters: Default::default(),
            latency: crate::stats::Histogram::new(),
        });
        let mk = |src| crate::sched::Job {
            tenant: tenant.clone(),
            request: Request::Bfs {
                graph: "g".into(),
                src,
            },
            submitted: Instant::now(),
            slot: ReplySlot::new(),
        };
        let jobs = vec![mk(0), mk(3), mk(99)]; // 99: out of range
        let slots: Vec<_> = jobs.iter().map(|j| j.slot.clone()).collect();
        run_batch(&ctx, &graphs, &stats, Batch { jobs });
        assert_eq!(
            slots[0].wait(),
            Reply::Levels(vec![0, 1, 1, 2, 3, -1]),
            "levels from 0"
        );
        assert_eq!(slots[1].wait(), Reply::Levels(vec![-1, -1, -1, 0, 1, -1]));
        assert!(matches!(slots[2].wait(), Reply::Err(_)));
        assert_eq!(stats.bfs_requests.load(Ordering::Relaxed), 2);
        assert_eq!(stats.bfs_batches.load(Ordering::Relaxed), 1);
    }
}
