//! A multi-tenant graph query service built on the GraphBLAS engine.
//!
//! Many tenants connect over a framed TCP protocol, name graphs, and
//! issue queries (BFS, one-hop, PageRank, degree, point reads and
//! updates). The service answers them with small GraphBLAS programs on
//! a shared blocking [`graphblas_core::Context`], so heavy kernels fan
//! out onto the engine's shared worker pool exactly like library use.
//!
//! What makes it a *service* rather than a socket wrapper:
//!
//! - **Batching** ([`sched`] + the execution engine): concurrent BFS requests
//!   against the same graph are coalesced into one multi-source sweep —
//!   a single masked `mxm` per level over a column-block of frontiers
//!   (the paper's §VII batched-BC trick) — then demultiplexed back to
//!   each request's reply slot.
//! - **Admission control** ([`sched`]): per-tenant bounded queues and a
//!   global engine-backlog gate shed excess load with a typed
//!   `OVERLOADED` reply instead of unbounded queueing.
//! - **Weighted fairness** ([`sched`]): stride scheduling picks the
//!   next tenant by smallest pass value, so a weight-4 tenant gets 4×
//!   the service of a weight-1 tenant under contention — and a flooding
//!   tenant cannot starve a light one.
//! - **O(1) point updates** ([`graphs`]): `EDGE+`/`EDGE-` append to the
//!   matrix's pending-update delta log and merge lazily at the next
//!   completion-forcing read.
//! - **Observability** ([`stats`]): per-tenant log-linear latency
//!   histograms (p50/p99/p999 with ~3% relative error) and service-wide
//!   counters, reported via the `STATS` request.

pub mod graphs;
pub mod net;
pub mod protocol;
pub mod sched;
pub mod service;
pub mod stats;

pub(crate) mod engine;

pub use net::{Client, Server};
pub use protocol::{Reply, Request};
pub use service::{Service, ServiceConfig};
