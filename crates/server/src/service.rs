//! The in-process service: named graphs + fair scheduler + a fixed
//! crew of executor threads driving requests onto the GraphBLAS
//! engine's shared worker pool.
//!
//! [`Service::submit`] is the synchronous request API every front end
//! uses — the TCP listener ([`crate::net`]), the load-generator bench,
//! and the integration tests all speak to the same object. Control-
//! plane requests (`HELLO`, `CREATE`, `STATS`) are answered inline;
//! data requests pass admission control, wait their turn under stride
//! fair scheduling, and are executed (possibly batched) by an executor
//! thread.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use graphblas_core::exec::pool_status;
use graphblas_core::{snapshot_stats, Context, FormatPolicy};

use crate::engine;
use crate::graphs::Registry;
use crate::protocol::{Reply, Request};
use crate::sched::{Admit, SchedConfig, Scheduler, Tenant};
use crate::stats::ServiceStats;

/// Service tunables. `Default` is sized for tests and small machines;
/// the binary and the bench override per deployment.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Executor threads pulling batches from the scheduler.
    pub workers: usize,
    /// Per-tenant admission queue bound (beyond it: `OVERLOADED`).
    pub queue_cap: usize,
    /// Largest same-graph BFS batch to coalesce.
    pub batch_max: usize,
    /// Shed every tenant while the engine pool backlog exceeds this.
    pub pool_backlog_cap: usize,
    /// Weight assigned to tenants first seen without a `HELLO`.
    pub default_weight: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_cap: 64,
            batch_max: 64,
            pool_backlog_cap: 4096,
            default_weight: 1,
        }
    }
}

/// The multi-tenant graph query service. Cheap to share (`Arc`);
/// [`Service::shutdown`] drains and joins the executors.
pub struct Service {
    ctx: Context,
    graphs: Registry,
    sched: Scheduler,
    stats: ServiceStats,
    cfg: ServiceConfig,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Start the service: spawns `cfg.workers` executor threads.
    pub fn start(cfg: ServiceConfig) -> Arc<Service> {
        let svc = Arc::new(Service {
            ctx: Context::blocking(),
            graphs: Registry::new(),
            sched: Scheduler::new(SchedConfig {
                queue_cap: cfg.queue_cap,
                batch_max: cfg.batch_max,
                pool_backlog_cap: cfg.pool_backlog_cap,
            }),
            stats: ServiceStats::default(),
            cfg,
            executors: Mutex::new(Vec::new()),
        });
        let mut handles = svc.executors.lock().unwrap_or_else(|e| e.into_inner());
        for i in 0..cfg.workers.max(1) {
            let svc = svc.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("grb-server-exec-{i}"))
                    .spawn(move || {
                        while let Some(batch) = svc.sched.next_batch() {
                            engine::run_batch(&svc.ctx, &svc.graphs, &svc.stats, batch);
                        }
                    })
                    .expect("spawn executor"),
            );
        }
        drop(handles);
        svc
    }

    /// Register (or fetch) a tenant with an explicit weight. The first
    /// registration fixes the weight.
    pub fn register_tenant(&self, name: &str, weight: u32) -> Arc<Tenant> {
        self.sched.register(name, weight)
    }

    /// Submit one request on behalf of `tenant` and block for the
    /// reply. Admission control may answer `Overloaded` immediately.
    pub fn submit(&self, tenant: &str, request: Request) -> Reply {
        // HELLO first: it carries the weight, and registration fixes
        // the weight at first sight — don't pre-register at default
        if let Request::Hello {
            tenant: name,
            weight,
        } = &request
        {
            let t = self.register_tenant(name, *weight);
            t.counters.submitted.fetch_add(1, Ordering::Relaxed);
            t.counters.completed.fetch_add(1, Ordering::Relaxed);
            return Reply::Ok;
        }
        let t = self.sched.register(tenant, self.cfg.default_weight);
        t.counters.submitted.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Stats => Reply::Stats(self.stats_report()),
            Request::CreateGraph {
                graph,
                nodes,
                tiles,
            } => match self.graphs.create(&graph, nodes, tiles) {
                Ok(()) => {
                    t.counters.completed.fetch_add(1, Ordering::Relaxed);
                    Reply::Ok
                }
                Err(msg) => {
                    t.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Reply::Err(msg)
                }
            },
            // data plane: admission → fair queue → executor
            other => match self.sched.submit(&t, other) {
                Admit::Queued(slot) => {
                    self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                    slot.wait()
                }
                Admit::Shed => Reply::Overloaded,
                Admit::Closed => Reply::Err("service is shutting down".into()),
            },
        }
    }

    /// The named-graph registry (bulk loading in benches/tests).
    pub fn graphs(&self) -> &Registry {
        &self.graphs
    }

    /// Service-wide counters (batching evidence for tests/benches).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The engine context queries run on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Render the `STATS` report: one `global` line, one `snapshot`
    /// observability line, one `tenant` line per registered tenant
    /// (latencies in microseconds).
    pub fn stats_report(&self) -> String {
        let pool = pool_status();
        let mut out = String::new();
        let _ = write!(
            out,
            "global graphs={} admitted={} bfs_requests={} bfs_batches={} max_batch={} pool_width={} pool_queued={}",
            self.graphs.len(),
            self.stats.admitted.load(Ordering::Relaxed),
            self.stats.bfs_requests.load(Ordering::Relaxed),
            self.stats.bfs_batches.load(Ordering::Relaxed),
            self.stats.max_batch.load(Ordering::Relaxed),
            pool.width,
            pool.queued,
        );
        // MVCC/compaction observability: process-wide counters from the
        // engine, plus the sealed-run backlog summed over our graphs.
        let snap = snapshot_stats();
        let sealed_runs: usize = self
            .graphs
            .entries()
            .iter()
            .map(|e| e.matrix.delta_stats().run_count)
            .sum();
        let _ = write!(
            out,
            "\nsnapshot active={} read_epoch={} sealed_runs={} compactions={} compacted_bytes={} bg_flushes={}",
            snap.snapshots_active,
            snap.last_read_epoch,
            sealed_runs,
            snap.compactions,
            snap.compacted_bytes,
            snap.background_flushes,
        );
        // Per-graph storage introspection: the configured format policy
        // (the `GxB_get(matrix, …)` view — policy, not the live layout,
        // so STATS never forces a pending drain) plus the delta backlog.
        let mut graphs = self.graphs.entries();
        graphs.sort_by(|a, b| a.name.cmp(&b.name));
        for g in graphs {
            let policy = match g.matrix.format_policy() {
                FormatPolicy::Auto => "auto".to_string(),
                FormatPolicy::Force(f) => format!("{f:?}").to_lowercase(),
                FormatPolicy::Tiled { rows, cols } => format!("tiled:{rows}x{cols}"),
            };
            let _ = write!(
                out,
                "\ngraph {} nodes={} policy={} sealed_runs={}",
                g.name,
                g.nodes,
                policy,
                g.matrix.delta_stats().run_count,
            );
        }
        for t in self.sched.tenants() {
            let (submitted, completed, shed, errors) = t.counters.snapshot();
            // Latencies are recorded in nanoseconds; report milliseconds
            // with one decimal. The old integer division truncated every
            // sub-unit quantile to 0, which read as "infinitely fast"
            // for exactly the fast requests worth bragging about.
            let ms = |ns: u64| ns as f64 / 1e6;
            let _ = write!(
                out,
                "\ntenant {} weight={} submitted={} completed={} shed={} errors={} p50_ms={:.1} p99_ms={:.1} p999_ms={:.1} max_ms={:.1}",
                t.name,
                t.weight,
                submitted,
                completed,
                shed,
                errors,
                ms(t.latency.quantile(0.5)),
                ms(t.latency.quantile(0.99)),
                ms(t.latency.quantile(0.999)),
                ms(t.latency.max()),
            );
        }
        out
    }

    /// All registered tenants (test/bench introspection).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.sched.tenants()
    }

    /// Drain queued work, stop the executors, and join them. Requests
    /// submitted after this returns an `ERR` reply.
    pub fn shutdown(&self) {
        self.sched.shutdown();
        let mut handles = self.executors.lock().unwrap_or_else(|e| e.into_inner());
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_single_tenant() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        assert_eq!(
            svc.submit(
                "t",
                Request::CreateGraph {
                    graph: "g".into(),
                    nodes: 5,
                    tiles: Some((2, 2))
                }
            ),
            Reply::Ok
        );
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            assert_eq!(
                svc.submit(
                    "t",
                    Request::AddEdge {
                        graph: "g".into(),
                        u,
                        v
                    }
                ),
                Reply::Ok
            );
        }
        assert_eq!(
            svc.submit(
                "t",
                Request::Bfs {
                    graph: "g".into(),
                    src: 0
                }
            ),
            Reply::Levels(vec![0, 1, 2, 3, 4])
        );
        assert_eq!(
            svc.submit(
                "t",
                Request::Degree {
                    graph: "g".into(),
                    v: 1
                }
            ),
            Reply::Count(1)
        );
        assert_eq!(
            svc.submit(
                "t",
                Request::HasEdge {
                    graph: "g".into(),
                    u: 0,
                    v: 1
                }
            ),
            Reply::Bool(true)
        );
        let Reply::Stats(report) = svc.submit("t", Request::Stats) else {
            panic!("expected stats")
        };
        assert!(report.contains("tenant t "), "{report}");
        // The snapshot observability line is always present, and the
        // BFS above read through at least one MVCC snapshot.
        assert!(report.contains("\nsnapshot active="), "{report}");
        assert!(report.contains("sealed_runs="), "{report}");
        assert!(report.contains("compactions="), "{report}");
        svc.shutdown();
        assert!(matches!(
            svc.submit(
                "t",
                Request::Bfs {
                    graph: "g".into(),
                    src: 0
                }
            ),
            Reply::Err(_)
        ));
    }

    #[test]
    fn hello_fixes_weight_and_stats_lists_tenants() {
        let svc = Service::start(ServiceConfig::default());
        assert_eq!(
            svc.submit(
                "vip",
                Request::Hello {
                    tenant: "vip".into(),
                    weight: 8
                }
            ),
            Reply::Ok
        );
        let vip = svc.register_tenant("vip", 1); // later weight ignored
        assert_eq!(vip.weight, 8);
        svc.shutdown();
    }

    #[test]
    fn unknown_graph_is_an_err_not_a_hang() {
        let svc = Service::start(ServiceConfig::default());
        assert!(matches!(
            svc.submit(
                "t",
                Request::Bfs {
                    graph: "nope".into(),
                    src: 0
                }
            ),
            Reply::Err(_)
        ));
        svc.shutdown();
    }
}
