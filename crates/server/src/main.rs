//! The `grb-serve` binary: bind a TCP address and serve graph queries.
//!
//! ```text
//! grb-serve [ADDR] [--workers N] [--queue-cap N] [--batch-max N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7687`. The process serves until
//! killed.

use std::process::ExitCode;
use std::sync::mpsc;

use server::{Server, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!("usage: grb-serve [ADDR] [--workers N] [--queue-cap N] [--batch-max N]");
    std::process::exit(2)
}

fn parse_args() -> (String, ServiceConfig) {
    let mut addr = "127.0.0.1:7687".to_string();
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    let mut positional = 0usize;
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a positive integer");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => cfg.workers = num("--workers").max(1),
            "--queue-cap" => cfg.queue_cap = num("--queue-cap").max(1),
            "--batch-max" => cfg.batch_max = num("--batch-max").max(1),
            "--help" | "-h" => usage(),
            a if a.starts_with('-') => usage(),
            a => {
                if positional > 0 {
                    usage();
                }
                positional += 1;
                addr = a.to_string();
            }
        }
    }
    (addr, cfg)
}

fn main() -> ExitCode {
    let (addr, cfg) = parse_args();
    let service = Service::start(cfg);
    let server = match Server::bind(&addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("grb-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "grb-serve: listening on {} (workers={}, queue_cap={}, batch_max={})",
        server.addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.batch_max
    );
    // serve forever: park the main thread on a channel nobody sends to
    let (_tx, rx) = mpsc::channel::<()>();
    let _ = rx.recv();
    ExitCode::SUCCESS
}
