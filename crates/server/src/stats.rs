//! Request telemetry: hdr-style fixed-bucket latency histograms and
//! per-tenant counters, all lock-free (`AtomicU64`) so the hot path
//! never serializes on observability.
//!
//! The histogram is the classic HdrHistogram bucket scheme with a
//! 5-bit sub-bucket mantissa: values below 32 get exact unit buckets;
//! above that, each power-of-two octave is split into 32 sub-buckets,
//! bounding the relative quantization error at ~3% across the full
//! `u64` range with a fixed 1920-slot table — no allocation after
//! construction, no dependencies.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32 linear buckets per octave
const OCTAVES: usize = 64 - SUB_BITS as usize; // 2^5 ..= 2^63
const NBUCKETS: usize = SUB * (OCTAVES + 1); // unit range + 59 octaves = 1920

/// Fixed-bucket log-linear histogram of `u64` samples (we record
/// nanoseconds). ~3% relative error, constant memory, lock-free.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a sample. Saturates into the top sub-bucket of the
/// top octave, so every `u64` (including `u64::MAX`) maps strictly
/// below [`NBUCKETS`] — `record` can never index out of bounds.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // 2^e <= v, e >= 5
        let mantissa = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
        ((e + 1 - SUB_BITS) as usize * SUB + mantissa).min(NBUCKETS - 1)
    }
}

/// Upper bound of the bucket (conservative quantiles round *up*).
/// Clamps out-of-range indices to the top bucket and saturates the
/// upper-bound arithmetic, which sits exactly at `u64::MAX` for the
/// final sub-bucket — one stray bit would otherwise wrap to a tiny
/// bound and silently corrupt every top-octave quantile.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx.min(NBUCKETS - 1);
    if idx < SUB {
        idx as u64
    } else {
        let g = (idx / SUB) as u32; // octave index, >= 1
        let m = (idx % SUB) as u64;
        let e = g + SUB_BITS - 1; // 5 ..= 63
        let unit = e - SUB_BITS; // sub-bucket width = 2^unit
        ((SUB as u64 + m) << unit).saturating_add((1u64 << unit) - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound; `0`
    /// when empty. `quantile(0.5)` = p50, `quantile(0.999)` = p999.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_value(i);
            }
        }
        self.max()
    }
}

/// Per-tenant request counters. `shed` counts `OVERLOADED` replies —
/// the admission-control evidence the fairness tests assert on.
#[derive(Default)]
pub struct TenantCounters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub errors: AtomicU64,
}

impl TenantCounters {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.submitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// Service-wide counters. `bfs_batches < bfs_requests` is the direct
/// observable of §VII coalescing: each batch is one column-block
/// frontier sweep (one `mxm` launch per level) regardless of how many
/// BFS requests it served.
#[derive(Default)]
pub struct ServiceStats {
    /// BFS requests answered (batched or not).
    pub bfs_requests: AtomicU64,
    /// `bfs_multi` launches — one per coalesced batch.
    pub bfs_batches: AtomicU64,
    /// Largest batch coalesced so far.
    pub max_batch: AtomicU64,
    /// Requests admitted into the scheduler (all types).
    pub admitted: AtomicU64,
}

impl ServiceStats {
    pub fn note_bfs_batch(&self, size: usize) {
        self.bfs_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.bfs_batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn index_value_round_trip_within_3pct() {
        for v in [
            1u64,
            31,
            32,
            33,
            100,
            1_000,
            4_095,
            65_537,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
        ] {
            let ub = bucket_value(bucket_index(v));
            assert!(ub >= v, "upper bound {ub} below sample {v}");
            let err = (ub - v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} ub={ub} err={err}");
        }
    }

    #[test]
    fn bucket_boundaries_are_monotone() {
        let mut prev = 0;
        for i in 1..NBUCKETS {
            let v = bucket_value(i);
            assert!(v > prev, "bucket {i}: {v} <= {prev}");
            prev = v;
        }
    }

    #[test]
    fn extreme_values_round_trip_without_panic() {
        // The top sub-bucket's upper bound is exactly u64::MAX; every
        // edge value must index in range and reconstruct a bound at or
        // above the sample.
        for v in [0u64, 1, 31, 32, u64::MAX - 1, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < NBUCKETS, "v={v} idx={idx} out of range");
            let ub = bucket_value(idx);
            assert!(ub >= v, "v={v} idx={idx} ub={ub} below sample");
        }
        assert_eq!(bucket_value(bucket_index(u64::MAX)), u64::MAX);
        // Out-of-range indices clamp instead of shifting past the word.
        assert_eq!(bucket_value(NBUCKETS), u64::MAX);
        assert_eq!(bucket_value(usize::MAX), u64::MAX);
        // Recording the extremes must not panic, and the quantile read
        // side must see them.
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn random_samples_round_trip_within_3pct() {
        // Deterministic xorshift sweep across all magnitudes: the
        // round-trip invariant (in-range index, upper bound >= sample,
        // <= 1/32 relative error away from the top octave) must hold
        // for arbitrary u64 samples, not just curated ones.
        let mut x = 0x243F_6A88_85A3_08D3u64; // seed: pi digits
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // vary magnitude: mask to a random bit-width 1..=64
            let width = (x % 64) + 1;
            let v = if width == 64 {
                x
            } else {
                x & ((1u64 << width) - 1)
            };
            let idx = bucket_index(v);
            assert!(idx < NBUCKETS, "v={v} idx={idx}");
            let ub = bucket_value(idx);
            assert!(ub >= v, "v={v} idx={idx} ub={ub}");
            if v >= 32 {
                // relative error bound; ub may saturate at u64::MAX in
                // the top sub-bucket, which only tightens it
                let err = (ub - v) as f64 / v as f64;
                assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} ub={ub} err={err}");
            }
        }
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        // 1000 samples: 900 at ~1us, 90 at ~1ms, 10 at ~100ms (in ns)
        for _ in 0..900 {
            h.record(1_000);
        }
        for _ in 0..90 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(100_000_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!((900..=1100).contains(&p50), "p50={p50}");
        assert!((950_000..=1_100_000).contains(&p99), "p99={p99}");
        assert!(p999 >= 100_000_000, "p999={p999}");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
    }
}
