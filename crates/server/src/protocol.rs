//! The wire protocol: length-prefixed frames carrying a line-oriented
//! text payload.
//!
//! Every message — request or reply — travels as one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8. The
//! payload's first whitespace-separated token names the message; the
//! rest are its operands. Text keeps the protocol debuggable with
//! `nc`-grade tooling while the length prefix keeps framing trivial and
//! binary-safe (no in-band delimiters, bounded reads).
//!
//! ```text
//! client                                server
//!   HELLO alice 3              ->
//!                              <-       OK
//!   CREATE web 1000            ->
//!                              <-       OK
//!   EDGE+ web 0 1              ->
//!                              <-       OK
//!   BFS web 0                  ->
//!                              <-       LEVELS 0 1 -1 ...
//!   STATS                      ->
//!                              <-       STATS\n<report lines>
//! ```
//!
//! A tenant must introduce itself with `HELLO <tenant> <weight>` before
//! any data request; the weight feeds the fair scheduler
//! ([`crate::sched`]). `OVERLOADED` is the typed load-shed reply of
//! admission control — clients are expected to back off and retry.

use std::fmt::Write as _;
use std::io::{self, Read, Write};

use graphblas_core::Index;

/// Hard ceiling on a single frame's payload, both directions.
pub const MAX_FRAME: usize = 16 << 20;

/// A client request. See the module docs for the wire grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `HELLO <tenant> <weight>` — introduce the connection's tenant.
    Hello { tenant: String, weight: u32 },
    /// `CREATE <graph> <nodes> [tiles=<r>x<c>]` — create an empty named
    /// graph, optionally sharded into an `r × c` tile grid (the
    /// `GxB_set(…, TileShape, …)` knob, reachable over the wire).
    CreateGraph {
        graph: String,
        nodes: usize,
        tiles: Option<(usize, usize)>,
    },
    /// `EDGE+ <graph> <u> <v>` — point insert (delta-log append).
    AddEdge { graph: String, u: Index, v: Index },
    /// `EDGE- <graph> <u> <v>` — point delete (delta-log append).
    RemoveEdge { graph: String, u: Index, v: Index },
    /// `HAS <graph> <u> <v>` — point read.
    HasEdge { graph: String, u: Index, v: Index },
    /// `DEG <graph> <v>` — out-degree of a vertex.
    Degree { graph: String, v: Index },
    /// `HOP <graph> <v>` — one-hop out-neighborhood of a vertex.
    OneHop { graph: String, v: Index },
    /// `BFS <graph> <src>` — BFS levels from a source (batchable).
    Bfs { graph: String, src: Index },
    /// `PR <graph> <iters>` — PageRank, capped power iterations.
    Pagerank { graph: String, iters: usize },
    /// `STATS` — service-wide and per-tenant counters and latencies.
    Stats,
}

/// A server reply. `Overloaded` is admission control's typed shed.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK`
    Ok,
    /// `BOOL 0|1`
    Bool(bool),
    /// `COUNT <n>`
    Count(u64),
    /// `IDS <i> <j> ...` (sorted vertex ids)
    Ids(Vec<Index>),
    /// `LEVELS <l0> <l1> ...` — one entry per vertex, `-1` = unreachable.
    Levels(Vec<i64>),
    /// `RANKS <r0> <r1> ...` — one entry per vertex.
    Ranks(Vec<f64>),
    /// `STATS\n<report>` — pre-rendered multi-line report.
    Stats(String),
    /// `OVERLOADED` — shed by admission control; back off and retry.
    Overloaded,
    /// `ERR <detail>`
    Err(String),
}

fn name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn tok<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("missing {what}"))?
        .parse::<T>()
        .map_err(|_| format!("malformed {what}"))
}

fn graph_tok<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<String, String> {
    let g: String = tok(it, "graph name")?;
    if !name_ok(&g) {
        return Err(format!("invalid graph name {g:?}"));
    }
    Ok(g)
}

/// Parse a `tiles=<r>x<c>` operand; both axes must be ≥ 1.
fn tiles_tok(t: &str) -> Result<(usize, usize), String> {
    let spec = t
        .strip_prefix("tiles=")
        .ok_or_else(|| format!("unknown CREATE operand {t:?}"))?;
    let axis = |s: &str| {
        s.parse::<usize>()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| format!("malformed tile grid {spec:?}"))
    };
    let (r, c) = spec
        .split_once('x')
        .ok_or_else(|| format!("malformed tile grid {spec:?}"))?;
    Ok((axis(r)?, axis(c)?))
}

impl Request {
    /// Parse one request payload. Errors are human-readable and become
    /// `ERR` replies.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let mut it = payload.split_whitespace();
        let cmd = it.next().ok_or_else(|| "empty request".to_string())?;
        let req = match cmd {
            "HELLO" => {
                let tenant: String = tok(&mut it, "tenant name")?;
                if !name_ok(&tenant) {
                    return Err(format!("invalid tenant name {tenant:?}"));
                }
                let weight: u32 = tok(&mut it, "weight")?;
                if weight == 0 {
                    return Err("weight must be >= 1".into());
                }
                Request::Hello { tenant, weight }
            }
            "CREATE" => Request::CreateGraph {
                graph: graph_tok(&mut it)?,
                nodes: tok(&mut it, "node count")?,
                tiles: it.next().map(tiles_tok).transpose()?,
            },
            "EDGE+" => Request::AddEdge {
                graph: graph_tok(&mut it)?,
                u: tok(&mut it, "u")?,
                v: tok(&mut it, "v")?,
            },
            "EDGE-" => Request::RemoveEdge {
                graph: graph_tok(&mut it)?,
                u: tok(&mut it, "u")?,
                v: tok(&mut it, "v")?,
            },
            "HAS" => Request::HasEdge {
                graph: graph_tok(&mut it)?,
                u: tok(&mut it, "u")?,
                v: tok(&mut it, "v")?,
            },
            "DEG" => Request::Degree {
                graph: graph_tok(&mut it)?,
                v: tok(&mut it, "v")?,
            },
            "HOP" => Request::OneHop {
                graph: graph_tok(&mut it)?,
                v: tok(&mut it, "v")?,
            },
            "BFS" => Request::Bfs {
                graph: graph_tok(&mut it)?,
                src: tok(&mut it, "source")?,
            },
            "PR" => Request::Pagerank {
                graph: graph_tok(&mut it)?,
                iters: tok(&mut it, "iteration count")?,
            },
            "STATS" => Request::Stats,
            other => return Err(format!("unknown command {other:?}")),
        };
        if it.next().is_some() {
            return Err(format!("trailing operands after {cmd}"));
        }
        Ok(req)
    }

    /// Render this request as a frame payload (inverse of [`Request::parse`]).
    pub fn render(&self) -> String {
        match self {
            Request::Hello { tenant, weight } => format!("HELLO {tenant} {weight}"),
            Request::CreateGraph {
                graph,
                nodes,
                tiles,
            } => match tiles {
                Some((r, c)) => format!("CREATE {graph} {nodes} tiles={r}x{c}"),
                None => format!("CREATE {graph} {nodes}"),
            },
            Request::AddEdge { graph, u, v } => format!("EDGE+ {graph} {u} {v}"),
            Request::RemoveEdge { graph, u, v } => format!("EDGE- {graph} {u} {v}"),
            Request::HasEdge { graph, u, v } => format!("HAS {graph} {u} {v}"),
            Request::Degree { graph, v } => format!("DEG {graph} {v}"),
            Request::OneHop { graph, v } => format!("HOP {graph} {v}"),
            Request::Bfs { graph, src } => format!("BFS {graph} {src}"),
            Request::Pagerank { graph, iters } => format!("PR {graph} {iters}"),
            Request::Stats => "STATS".into(),
        }
    }

    /// Whether this request mutates graph state (the write half of the
    /// admission mix; point writes ride the delta logs).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::AddEdge { .. } | Request::RemoveEdge { .. } | Request::CreateGraph { .. }
        )
    }
}

fn join_nums<T: std::fmt::Display>(prefix: &str, xs: &[T]) -> String {
    let mut s = String::with_capacity(prefix.len() + xs.len() * 3);
    s.push_str(prefix);
    for x in xs {
        let _ = write!(s, " {x}");
    }
    s
}

fn parse_nums<'a, T: std::str::FromStr>(
    it: impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<Vec<T>, String> {
    it.map(|t| {
        t.parse::<T>()
            .map_err(|_| format!("malformed {what} {t:?}"))
    })
    .collect()
}

impl Reply {
    /// Render this reply as a frame payload.
    pub fn render(&self) -> String {
        match self {
            Reply::Ok => "OK".into(),
            Reply::Bool(b) => format!("BOOL {}", u8::from(*b)),
            Reply::Count(n) => format!("COUNT {n}"),
            Reply::Ids(ids) => join_nums("IDS", ids),
            Reply::Levels(ls) => join_nums("LEVELS", ls),
            Reply::Ranks(rs) => join_nums("RANKS", rs),
            Reply::Stats(report) => format!("STATS\n{report}"),
            Reply::Overloaded => "OVERLOADED".into(),
            Reply::Err(msg) => format!("ERR {msg}"),
        }
    }

    /// Parse one reply payload (the client half of the protocol).
    pub fn parse(payload: &str) -> Result<Reply, String> {
        // ERR and STATS carry free-form text: split those off raw
        if let Some(msg) = payload.strip_prefix("ERR ") {
            return Ok(Reply::Err(msg.to_string()));
        }
        if let Some(report) = payload.strip_prefix("STATS\n") {
            return Ok(Reply::Stats(report.to_string()));
        }
        let mut it = payload.split_whitespace();
        let tag = it.next().ok_or_else(|| "empty reply".to_string())?;
        match tag {
            "OK" => Ok(Reply::Ok),
            "BOOL" => {
                let b: u8 = tok(&mut it, "bool")?;
                Ok(Reply::Bool(b != 0))
            }
            "COUNT" => Ok(Reply::Count(tok(&mut it, "count")?)),
            "IDS" => Ok(Reply::Ids(parse_nums(it, "id")?)),
            "LEVELS" => Ok(Reply::Levels(parse_nums(it, "level")?)),
            "RANKS" => Ok(Reply::Ranks(parse_nums(it, "rank")?)),
            "OVERLOADED" => Ok(Reply::Overloaded),
            "ERR" => Ok(Reply::Err(String::new())),
            other => Err(format!("unknown reply tag {other:?}")),
        }
    }
}

/// Write one frame: 4-byte big-endian length, then the payload bytes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                tenant: "alice".into(),
                weight: 3,
            },
            Request::CreateGraph {
                graph: "web".into(),
                nodes: 1000,
                tiles: None,
            },
            Request::CreateGraph {
                graph: "web2".into(),
                nodes: 1000,
                tiles: Some((4, 4)),
            },
            Request::AddEdge {
                graph: "web".into(),
                u: 0,
                v: 1,
            },
            Request::RemoveEdge {
                graph: "web".into(),
                u: 5,
                v: 9,
            },
            Request::HasEdge {
                graph: "web".into(),
                u: 1,
                v: 2,
            },
            Request::Degree {
                graph: "web".into(),
                v: 7,
            },
            Request::OneHop {
                graph: "g-2".into(),
                v: 7,
            },
            Request::Bfs {
                graph: "web".into(),
                src: 4,
            },
            Request::Pagerank {
                graph: "web".into(),
                iters: 20,
            },
            Request::Stats,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.render()).unwrap(), r);
        }
    }

    #[test]
    fn replies_round_trip() {
        let reps = [
            Reply::Ok,
            Reply::Bool(true),
            Reply::Bool(false),
            Reply::Count(42),
            Reply::Ids(vec![1, 2, 30]),
            Reply::Levels(vec![0, 1, -1, 2]),
            Reply::Ranks(vec![0.25, 0.5, 0.125]),
            Reply::Stats("line one\nline two".into()),
            Reply::Overloaded,
            Reply::Err("no such graph".into()),
        ];
        for r in reps {
            assert_eq!(Reply::parse(&r.render()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "NOPE web 1",
            "BFS",
            "BFS web x",
            "BFS web 1 extra",
            "CREATE sp ace 4",
            "CREATE g 4 tiles=0x4",
            "CREATE g 4 tiles=4",
            "CREATE g 4 grid=4x4",
            "CREATE g 4 tiles=4x4 extra",
            "HELLO t 0",
            "HELLO bad!name 1",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "BFS web 3").unwrap();
        write_frame(&mut buf, "STATS").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("BFS web 3"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("STATS"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
