//! Concurrent point writes must never corrupt concurrent readers.
//!
//! The graph has two disconnected components: a chain the reader
//! traverses, and a scratch component the writer mutates. Because the
//! components stay disconnected, every BFS from the chain head has one
//! exact correct answer no matter how the writer's edits interleave —
//! any deviation means a torn read of the delta log or the backing
//! store. At the end the writer's edits must all be visible.

use std::time::Instant;

use server::{Reply, Request, Service, ServiceConfig};

const CHAIN: usize = 24; // nodes 0..CHAIN form the reader's chain
const SCRATCH: usize = 40; // nodes CHAIN..CHAIN+SCRATCH are the writer's
const N: usize = CHAIN + SCRATCH;

#[test]
fn point_writes_never_corrupt_concurrent_bfs() {
    let svc = Service::start(ServiceConfig {
        workers: 4,
        queue_cap: 64,
        ..Default::default()
    });
    assert_eq!(
        svc.submit(
            "setup",
            Request::CreateGraph {
                graph: "g".into(),
                nodes: N,
                tiles: None
            }
        ),
        Reply::Ok
    );
    for u in 0..CHAIN - 1 {
        assert_eq!(
            svc.submit(
                "setup",
                Request::AddEdge {
                    graph: "g".into(),
                    u,
                    v: u + 1
                }
            ),
            Reply::Ok
        );
    }
    // The one exact answer every concurrent BFS must produce: levels
    // 0..CHAIN on the chain, unreachable everywhere in scratch.
    let expect: Vec<i64> = (0..N)
        .map(|v| if v < CHAIN { v as i64 } else { -1 })
        .collect();

    // The writer submits synchronously, so its ops apply in program
    // order; replaying this log gives the exact expected final state.
    #[derive(Clone, Copy)]
    enum Op {
        Add(usize, usize),
        Del(usize, usize),
    }
    let writer = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            let mut ops = Vec::new();
            let mut added = Vec::new();
            let deadline = Instant::now() + std::time::Duration::from_millis(800);
            let mut k = 0usize;
            while Instant::now() < deadline {
                let u = CHAIN + (k * 7) % SCRATCH;
                let v = CHAIN + (k * 13 + 1) % SCRATCH;
                assert_eq!(
                    svc.submit(
                        "writer",
                        Request::AddEdge {
                            graph: "g".into(),
                            u,
                            v
                        }
                    ),
                    Reply::Ok
                );
                ops.push(Op::Add(u, v));
                added.push((u, v));
                // every third step, also delete an earlier edge so the
                // delta log carries interleaved inserts and deletes
                if k % 3 == 2 {
                    let (du, dv) = added[k / 3];
                    assert_eq!(
                        svc.submit(
                            "writer",
                            Request::RemoveEdge {
                                graph: "g".into(),
                                u: du,
                                v: dv
                            }
                        ),
                        Reply::Ok
                    );
                    ops.push(Op::Del(du, dv));
                }
                k += 1;
            }
            ops
        })
    };

    let reader = {
        let svc = svc.clone();
        let expect = expect.clone();
        std::thread::spawn(move || {
            let mut runs = 0usize;
            let deadline = Instant::now() + std::time::Duration::from_millis(800);
            while Instant::now() < deadline {
                match svc.submit(
                    "reader",
                    Request::Bfs {
                        graph: "g".into(),
                        src: 0,
                    },
                ) {
                    Reply::Levels(levels) => {
                        assert_eq!(levels, expect, "BFS torn by concurrent writes (run {runs})")
                    }
                    Reply::Overloaded => {}
                    other => panic!("unexpected reply: {other:?}"),
                }
                runs += 1;
            }
            runs
        })
    };

    let ops = writer.join().unwrap();
    let reads = reader.join().unwrap();
    assert!(!ops.is_empty(), "writer made no progress");
    assert!(reads > 0, "reader made no progress");

    // Replay the op log to compute the exact expected final membership
    // of every touched pair, then check the graph agrees.
    let mut live = std::collections::HashMap::new();
    for op in &ops {
        match *op {
            Op::Add(u, v) => {
                live.insert((u, v), true);
            }
            Op::Del(u, v) => {
                live.insert((u, v), false);
            }
        }
    }
    for (&(u, v), &present) in &live {
        assert_eq!(
            svc.submit(
                "setup",
                Request::HasEdge {
                    graph: "g".into(),
                    u,
                    v
                }
            ),
            Reply::Bool(present),
            "final state wrong for edge ({u},{v})"
        );
    }
    svc.shutdown();
}
