//! Admission control and fairness under load, plus batching evidence.
//!
//! These tests run the real service (executor threads, stride
//! scheduler, engine) in-process. Timing assertions use generous
//! absolute bounds so they stay robust on slow CI machines — the
//! *structural* claims (who got shed, who completed, how many batches
//! launched) are the point.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use server::{Reply, Request, Service, ServiceConfig};

/// Bulk-load a graph through the registry (the documented bulk path),
/// bypassing the request queue so setup does not perturb the stats the
/// tests assert on.
fn bulk_graph(
    svc: &Service,
    name: &str,
    nodes: usize,
    edges: impl Iterator<Item = (usize, usize)>,
) {
    svc.graphs().create(name, nodes, None).unwrap();
    let g = svc.graphs().get(name).unwrap();
    for (u, v) in edges {
        g.matrix.set(u, v, true).unwrap();
    }
}

fn chain_edges(nodes: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..nodes - 1).map(|u| (u, u + 1))
}

/// Pseudorandom edges: enough busywork that PageRank holds the single
/// executor for a while.
fn random_edges(nodes: usize, count: usize) -> impl Iterator<Item = (usize, usize)> {
    let mut x = 0x9e3779b9u64;
    std::iter::repeat_with(move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 33) as usize % nodes;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (x >> 33) as usize % nodes;
        (u, v)
    })
    .take(count)
}

/// A flooding tenant overruns its bounded queue and gets typed
/// `OVERLOADED` replies, while a light tenant sharing the service is
/// never shed, completes everything, and sees bounded latency.
#[test]
fn flooder_sheds_light_tenant_survives() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_cap: 4,
        batch_max: 64,
        ..Default::default()
    });
    bulk_graph(&svc, "busy", 1200, random_edges(1200, 9600));
    bulk_graph(&svc, "g", 32, chain_edges(32));

    // Occupy the single executor with slow work so the flood backs up.
    let slow = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            svc.submit(
                "setup",
                Request::Pagerank {
                    graph: "busy".into(),
                    iters: 100,
                },
            )
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Flood: 16 concurrent submitters against a queue capped at 4.
    let flooders: Vec<_> = (0..16)
        .map(|_| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                svc.submit(
                    "flood",
                    Request::Degree {
                        graph: "g".into(),
                        v: 0,
                    },
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Light tenant submits a handful of cheap queries during the storm.
    let light = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            let mut replies = Vec::new();
            for _ in 0..4 {
                replies.push(svc.submit(
                    "light",
                    Request::HasEdge {
                        graph: "g".into(),
                        u: 0,
                        v: 1,
                    },
                ));
            }
            replies
        })
    };

    let flood_replies: Vec<Reply> = flooders.into_iter().map(|h| h.join().unwrap()).collect();
    let light_replies = light.join().unwrap();
    assert!(matches!(slow.join().unwrap(), Reply::Ranks(_)));

    let shed = flood_replies
        .iter()
        .filter(|r| **r == Reply::Overloaded)
        .count();
    assert!(shed > 0, "flooder was never shed: {flood_replies:?}");
    assert!(
        light_replies.iter().all(|r| *r == Reply::Bool(true)),
        "light tenant got wrong replies: {light_replies:?}"
    );

    let tenants = svc.tenants();
    let light_t = tenants.iter().find(|t| t.name == "light").unwrap();
    let (submitted, completed, shed_count, errors) = light_t.counters.snapshot();
    assert_eq!(submitted, 4);
    assert_eq!(completed, 4);
    assert_eq!(shed_count, 0, "light tenant must never be shed");
    assert_eq!(errors, 0);
    // Generous absolute bound: the light tenant waits at most for the
    // in-flight slow job plus a fair share of the backlog.
    assert!(
        light_t.latency.quantile(0.99) < Duration::from_secs(60).as_nanos() as u64,
        "light tenant p99 unbounded"
    );

    let flood_t = tenants.iter().find(|t| t.name == "flood").unwrap();
    let (_, _, flood_shed, _) = flood_t.counters.snapshot();
    assert_eq!(flood_shed as usize, shed, "shed counter must match replies");

    svc.shutdown();
}

/// Concurrent same-graph BFS requests coalesce: strictly fewer batch
/// launches than requests, and every request still gets its own
/// correct levels.
#[test]
fn concurrent_bfs_coalesce_into_fewer_batches() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_cap: 32,
        batch_max: 64,
        ..Default::default()
    });
    bulk_graph(&svc, "busy", 1200, random_edges(1200, 9600));
    bulk_graph(&svc, "g", 8, chain_edges(8));

    // Hold the single executor so the BFS requests pile up and the
    // scheduler can sweep them into one column-block batch.
    let slow = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            svc.submit(
                "setup",
                Request::Pagerank {
                    graph: "busy".into(),
                    iters: 100,
                },
            )
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let n_bfs = 16usize;
    let bfs: Vec<_> = (0..n_bfs)
        .map(|i| {
            let svc = svc.clone();
            // four tenants so coalescing is demonstrably cross-tenant
            let tenant = format!("t{}", i % 4);
            std::thread::spawn(move || {
                (
                    i,
                    svc.submit(
                        &tenant,
                        Request::Bfs {
                            graph: "g".into(),
                            src: i % 8,
                        },
                    ),
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    for h in bfs {
        let (i, reply) = h.join().unwrap();
        let Reply::Levels(levels) = reply else {
            panic!("request {i} failed: expected levels")
        };
        let src = i % 8;
        let expect: Vec<i64> = (0..8)
            .map(|v| if v >= src { (v - src) as i64 } else { -1 })
            .collect();
        assert_eq!(levels, expect, "wrong levels for source {src}");
    }
    assert!(matches!(slow.join().unwrap(), Reply::Ranks(_)));

    let stats = svc.stats();
    let requests = stats.bfs_requests.load(Ordering::Relaxed);
    let batches = stats.bfs_batches.load(Ordering::Relaxed);
    let max_batch = stats.max_batch.load(Ordering::Relaxed);
    assert_eq!(requests, n_bfs as u64);
    assert!(
        batches < requests,
        "no coalescing happened: {batches} batches for {requests} requests"
    );
    assert!(
        max_batch > 1,
        "largest batch should contain multiple frontiers"
    );

    svc.shutdown();
}

/// The `STATS` report prints tenant latencies in milliseconds with one
/// decimal place. The old report integer-divided nanosecond quantiles,
/// so every sub-unit latency printed as a flat `0` — this pins the
/// fixed-point format (`p50_ms=0.8`, not `p50_us=0`) for each quantile
/// key, on real sub-millisecond requests.
#[test]
fn stats_reports_fractional_millisecond_latencies() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_cap: 8,
        batch_max: 8,
        ..Default::default()
    });
    bulk_graph(&svc, "g", 8, chain_edges(8));
    for _ in 0..8 {
        // HasEdge completes in well under a millisecond: exactly the
        // latency range the truncating formatter erased.
        assert_eq!(
            svc.submit(
                "probe",
                Request::HasEdge {
                    graph: "g".into(),
                    u: 0,
                    v: 1,
                },
            ),
            Reply::Bool(true)
        );
    }
    let Reply::Stats(report) = svc.submit("probe", Request::Stats) else {
        panic!("STATS must answer with a report");
    };
    let line = report
        .lines()
        .find(|l| l.starts_with("tenant probe "))
        .unwrap_or_else(|| panic!("no tenant line in report:\n{report}"));
    for key in ["p50_ms=", "p99_ms=", "p999_ms=", "max_ms="] {
        let field = line
            .split_whitespace()
            .find_map(|f| f.strip_prefix(key))
            .unwrap_or_else(|| panic!("missing {key} in line: {line}"));
        // Fixed-point with exactly one decimal: digits '.' digit.
        let (int, frac) = field
            .split_once('.')
            .unwrap_or_else(|| panic!("{key}{field} is not fixed-point"));
        assert!(
            !int.is_empty() && int.chars().all(|c| c.is_ascii_digit()),
            "{key}{field} has a malformed integer part"
        );
        assert!(
            frac.len() == 1 && frac.chars().all(|c| c.is_ascii_digit()),
            "{key}{field} must carry exactly one decimal"
        );
    }
    // The quantiles themselves must be sane: sub-millisecond probes
    // cannot round up to minutes.
    let p50: f64 = line
        .split_whitespace()
        .find_map(|f| f.strip_prefix("p50_ms="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(p50 < 60_000.0, "p50 {p50}ms is implausible for HasEdge");
    svc.shutdown();
}

/// Weighted fairness end to end: under sustained contention, a
/// weight-4 tenant completes more work than a weight-1 tenant on the
/// same service. Uses PageRank (never coalesced) so the stride
/// scheduler alone decides the service order.
#[test]
fn weighted_tenant_gets_more_service() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_cap: 8,
        batch_max: 8,
        ..Default::default()
    });
    bulk_graph(&svc, "g", 64, chain_edges(64));
    svc.submit(
        "heavy",
        Request::Hello {
            tenant: "heavy".into(),
            weight: 4,
        },
    );
    svc.submit(
        "lite",
        Request::Hello {
            tenant: "lite".into(),
            weight: 1,
        },
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let spin = |tenant: &'static str| {
        let svc = svc.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if svc.submit(
                    tenant,
                    Request::Pagerank {
                        graph: "g".into(),
                        iters: 5,
                    },
                ) != Reply::Overloaded
                {
                    done += 1;
                }
            }
            done
        })
    };
    // Two submitters per tenant keep both queues non-empty, so the
    // scheduler is always choosing between them.
    let hs: Vec<_> = vec![spin("heavy"), spin("heavy"), spin("lite"), spin("lite")];
    std::thread::sleep(Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    let counts: Vec<u64> = hs.into_iter().map(|h| h.join().unwrap()).collect();
    let heavy = counts[0] + counts[1];
    let lite = counts[2] + counts[3];
    assert!(
        heavy > lite,
        "weight-4 tenant should outpace weight-1: heavy={heavy} lite={lite}"
    );
    svc.shutdown();
}
