#!/usr/bin/env bash
# One-shot reproduction driver: build, test, bench, summarize.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== examples (smoke) =="
for ex in quickstart semiring_zoo nonblocking community; do
    cargo run --release -q --example "$ex" >/dev/null
    echo "example $ex: ok"
done

echo "== benches (this can take ~15 minutes) =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "== summary =="
python3 scripts/summarize_bench.py bench_output.txt
echo "Done. See EXPERIMENTS.md for the per-table/figure interpretation."
