#!/usr/bin/env python3
"""Summarize a `cargo bench` (criterion) log into a markdown table.

Usage: python3 scripts/summarize_bench.py bench_output.txt
Prints one row per benchmark id with the midpoint estimate.
"""
import re
import sys


def main(path: str) -> None:
    text = open(path).read()
    # criterion prints:  <id>\n  time: [lo mid hi]  (id may wrap lines)
    pattern = re.compile(
        r"^([\w/ .:_-]+?)\s*\n?\s+time:\s+\[([\d.]+ \w+) ([\d.]+ \w+) ([\d.]+ \w+)\]",
        re.M,
    )
    rows = []
    for m in pattern.finditer(text):
        name = " ".join(m.group(1).split())
        if name.startswith("Benchmarking"):
            name = name[len("Benchmarking"):].strip()
        rows.append((name, m.group(3)))
    print("| benchmark | time (midpoint) |")
    print("|---|---|")
    for name, mid in rows:
        print(f"| `{name}` | {mid} |")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
