#!/usr/bin/env bash
# Tier-1 verification: release build, the full test suite, and the
# sequential execution path (core with the `parallel` feature off, so
# the scheduler's sequential fallback and the single-threaded kernels
# stay green too).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo build --release -p server"
cargo build --release -p server

echo "== cargo build --examples"
cargo build --examples

echo "== cargo test -q (workspace)"
cargo test -q --workspace

echo "== cargo test -q -p graphblas-core --no-default-features (sequential path)"
cargo test -q -p graphblas-core --no-default-features

# Benches must at least compile (they are exercised manually / by the
# reproduce script, not in CI hot path).
echo "== cargo bench --no-run"
cargo bench --no-run --quiet

# Out-of-core cold tiles: the mmap-backed grid must build and traverse
# a graph whose slab cannot be allocated under a 32 MiB rlimit-capped
# heap (tests/out_of_core.rs caps its own process; feature-gated so the
# default build stays dependency-free of the unix mmap ABI).
echo "== cargo test -q --features mmap-cold (cold tiles + out-of-core smoke)"
cargo test -q -p graphblas-core --features mmap-cold cold
cargo test -q --features mmap-cold --test out_of_core

# Thread matrix: the pool width and default degree follow
# GRB_TEST_THREADS, and the determinism suites (serial-vs-parallel,
# deferred-vs-eager pending updates, MVCC snapshot isolation,
# push/pull/dense SpMSpV direction equivalence, tiled-vs-slab bitwise
# equivalence, and the query service's admission/fairness/
# write-isolation properties) must hold at every count.
for threads in 1 2 8; do
    echo "== GRB_TEST_THREADS=$threads cargo test -q --test par_determinism --test delta_equivalence --test snapshot_isolation --test direction_equivalence --test tiled_equivalence --test udf_equivalence"
    GRB_TEST_THREADS="$threads" cargo test -q --test par_determinism --test delta_equivalence --test snapshot_isolation --test direction_equivalence --test tiled_equivalence --test udf_equivalence
    echo "== GRB_TEST_THREADS=$threads cargo test -q -p server --test admission --test write_during_bfs"
    GRB_TEST_THREADS="$threads" cargo test -q -p server --test admission --test write_during_bfs
done

echo "== cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== OK"
