#!/usr/bin/env bash
# Tier-1 verification: release build, the full test suite, and the
# sequential execution path (core with the `parallel` feature off, so
# the scheduler's sequential fallback and the single-threaded kernels
# stay green too).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (workspace)"
cargo test -q --workspace

echo "== cargo test -q -p graphblas-core --no-default-features (sequential path)"
cargo test -q -p graphblas-core --no-default-features

echo "== cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== OK"
