//! PR acceptance property for 2D-tiled storage (`storage::tiled`): a
//! matrix sharded into a tile grid answers **bitwise** identically —
//! values *and* pattern, NaN / ±∞ / -0.0 payloads included — to the
//! same matrix stored as a single slab, across execution modes
//! {blocking, nonblocking-sequential, nonblocking-parallel}, tile
//! grids {1×1, 2×2, 4×4}, and intra-kernel parallelism degrees
//! {1, 2, 8}. Tiling is a storage-only decision: no kernel result, no
//! delta-log drain, and no snapshot read may observe it.

use graphblas_core::par;
use graphblas_core::prelude::*;
use graphblas_core::SchedPolicy;
use proptest::prelude::*;

const N: usize = 24;
const DEGREES: [usize; 3] = [1, 2, 8];
const GRIDS: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 4)];

/// Decode a strategy byte into an f64 payload; low codes are the
/// adversarial specials (NaN, ±∞, -0.0).
fn fval(code: u8) -> f64 {
    match code {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        c => (f64::from(c) - 128.0) * 0.625,
    }
}

type Tuples = Vec<(usize, usize, u8)>;

fn sparse(max_nnz: usize) -> impl Strategy<Value = Tuples> {
    proptest::collection::vec((0..N, 0..N, 0u8..255), 0..=max_nnz).prop_map(|mut t| {
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        t
    })
}

fn to_matrix(t: &Tuples, grid: Option<(usize, usize)>) -> Matrix<f64> {
    let tuples: Vec<(usize, usize, f64)> = t.iter().map(|&(i, j, c)| (i, j, fval(c))).collect();
    let m = Matrix::from_tuples(N, N, &tuples).unwrap();
    match grid {
        Some((r, c)) => m.set_tile_shape(r, c).unwrap(),
        None => m.set_format(Format::Csr).unwrap(),
    }
    m
}

fn to_vector(t: &Tuples) -> Vector<f64> {
    let v = Vector::<f64>::new(N).unwrap();
    for &(i, _, c) in t {
        v.set(i, fval(c)).unwrap();
    }
    v
}

fn vector_bits(v: &Vector<f64>) -> Vec<(usize, u64)> {
    v.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, x)| (i, x.to_bits()))
        .collect()
}

fn matrix_bits(m: &Matrix<f64>) -> Vec<(usize, usize, u64)> {
    m.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, x)| (i, j, x.to_bits()))
        .collect()
}

/// Run `f` with the intra-kernel degree pinned to `k` and the cost
/// model forced so even proptest-sized fixtures chunk.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

fn contexts() -> [Context; 3] {
    [
        Context::blocking(),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `vxm` and `mxv` over a tiled operand answer bitwise identically
    /// to the slab, under every (mode, grid, degree, transpose) shape —
    /// the tiled push/pull gathers visit tiles in ascending global
    /// index order, reproducing the slab kernels' fold order exactly.
    #[test]
    fn tiled_mat_vec_matches_slab_bitwise(
        a in sparse(96),
        u in sparse(24),
        mask in sparse(24),
        transpose in any::<bool>(),
        complement in any::<bool>(),
    ) {
        let mut desc = Descriptor::default().structural_mask();
        if complement {
            desc = desc.complement_mask();
        }
        let vdesc = if transpose { desc.transpose_second() } else { desc };
        let mdesc = if transpose { desc.transpose_first() } else { desc };
        for ctx in contexts() {
            let slab = to_matrix(&a, None);
            let uv = to_vector(&u);
            let mv = to_vector(&mask);
            for k in DEGREES {
                let reference = at_degree(k, || {
                    let w = Vector::<f64>::new(N).unwrap();
                    ctx.vxm(&w, &mv, NoAccum, plus_times::<f64>(), &uv, &slab, &vdesc).unwrap();
                    let y = Vector::<f64>::new(N).unwrap();
                    ctx.mxv(&y, &mv, NoAccum, plus_times::<f64>(), &slab, &uv, &mdesc).unwrap();
                    (vector_bits(&w), vector_bits(&y))
                });
                for grid in GRIDS {
                    let am = to_matrix(&a, Some(grid));
                    let got = at_degree(k, || {
                        let w = Vector::<f64>::new(N).unwrap();
                        ctx.vxm(&w, &mv, NoAccum, plus_times::<f64>(), &uv, &am, &vdesc).unwrap();
                        let y = Vector::<f64>::new(N).unwrap();
                        ctx.mxv(&y, &mv, NoAccum, plus_times::<f64>(), &am, &uv, &mdesc).unwrap();
                        (vector_bits(&w), vector_bits(&y))
                    });
                    prop_assert_eq!(
                        &reference, &got,
                        "tiled {:?} diverged from slab (mode {:?} degree {} transpose {} \
                         complement {})",
                        grid, ctx.mode(), k, transpose, complement
                    );
                }
            }
        }
    }

    /// `mxm` with a tiled left operand matches the slab product
    /// bitwise; eWise and reduce (served through the assembled row
    /// view) ride along in the same pipeline.
    #[test]
    fn tiled_pipeline_matches_slab_bitwise(
        a in sparse(96),
        b in sparse(96),
    ) {
        let desc = Descriptor::default();
        for ctx in contexts() {
            for k in DEGREES {
                let run = |grid: Option<(usize, usize)>| at_degree(k, || {
                    let am = to_matrix(&a, grid);
                    let bm = to_matrix(&b, None);
                    let c = Matrix::<f64>::new(N, N).unwrap();
                    ctx.mxm(&c, NoMask, NoAccum, plus_times::<f64>(), &am, &bm, &desc).unwrap();
                    let s = Matrix::<f64>::new(N, N).unwrap();
                    ctx.ewise_add_matrix(&s, NoMask, NoAccum, Plus::<f64>::new(), &am, &bm, &desc)
                        .unwrap();
                    let total = Vector::<f64>::new(N).unwrap();
                    ctx.reduce_rows(
                        &total, NoMask, NoAccum, PlusMonoid::<f64>::new(), &am, &desc,
                    ).unwrap();
                    (matrix_bits(&c), matrix_bits(&s), vector_bits(&total))
                });
                let reference = run(None);
                for grid in GRIDS {
                    prop_assert_eq!(
                        &reference, &run(Some(grid)),
                        "tiled {:?} pipeline diverged (mode {:?} degree {})",
                        grid, ctx.mode(), k
                    );
                }
            }
        }
    }

    /// Point updates drain through the tile-granular flush path; a
    /// snapshot pinned mid-stream must keep reading the pre-update
    /// value while the handle moves on — all bitwise against the slab.
    #[test]
    fn tiled_delta_and_snapshot_match_slab(
        a in sparse(64),
        writes in proptest::collection::vec((0..N, 0..N, 0u8..255, any::<bool>()), 1..40),
    ) {
        for ctx in contexts() {
            for grid in GRIDS {
                let run = |grid: Option<(usize, usize)>| {
                    let m = to_matrix(&a, grid);
                    let (early, late) = writes.split_at(writes.len() / 2);
                    for &(i, j, c, del) in early {
                        if del { m.remove(i, j).unwrap() } else { m.set(i, j, fval(c)).unwrap() }
                    }
                    // pin a snapshot mid-stream, then keep writing
                    let snap = m.snapshot();
                    for &(i, j, c, del) in late {
                        if del { m.remove(i, j).unwrap() } else { m.set(i, j, fval(c)).unwrap() }
                    }
                    let snap_bits: Vec<(usize, usize, u64)> = snap
                        .extract_tuples()
                        .unwrap()
                        .into_iter()
                        .map(|(i, j, x)| (i, j, x.to_bits()))
                        .collect();
                    // force the drain through the store's merge path
                    m.wait().unwrap();
                    (snap_bits, matrix_bits(&m))
                };
                let _ = ctx; // updates drain on the handle, mode-independent
                let reference = run(None);
                prop_assert_eq!(
                    &reference, &run(Some(grid)),
                    "tiled {:?} delta/snapshot diverged", grid
                );
            }
        }
    }
}

/// A tiled matrix stays tiled across a flush (the policy directs the
/// merge back into the same grid), and a slab matrix is untouched by
/// the tiled code paths.
#[test]
fn flush_preserves_the_tile_grid() {
    let m = Matrix::<f64>::from_tuples(32, 32, &[(0, 0, 1.0), (20, 20, 2.0)]).unwrap();
    m.set_tile_shape(4, 4).unwrap();
    assert_eq!(m.format().unwrap(), Format::Tiled);
    for i in 0..32 {
        m.set(i, (i * 3) % 32, i as f64).unwrap();
    }
    m.wait().unwrap();
    assert_eq!(m.format().unwrap(), Format::Tiled);
    assert_eq!(m.tile_shape(), Some((4, 4)));
    assert_eq!(m.extract_tuples().unwrap().len(), 33);
    m.clear_tile_shape().unwrap();
    assert_ne!(m.format().unwrap(), Format::Tiled);
    assert_eq!(m.extract_tuples().unwrap().len(), 33);
}
