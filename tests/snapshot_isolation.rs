//! PR acceptance property for MVCC snapshots (`storage::snapshot`): a
//! snapshot taken at epoch E observes **bitwise** the state at E — no
//! matter how many writes, forcing reads, background flushes, or run
//! compactions happen afterwards — across execution modes, storage
//! formats, and intra-kernel parallelism degrees, with NaN / ±∞ / -0.0
//! payloads included. The reference is an independently-maintained
//! shadow map, so the check is not circular through the overlay merge.
//!
//! Every test pins the session delta run cap to 3 so even
//! proptest-sized programs seal runs and trip the LSM compactor.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graphblas_core::par;
use graphblas_core::prelude::*;
use graphblas_core::storage::delta;
use graphblas_core::SchedPolicy;
use proptest::prelude::*;

const N: usize = 16;
const DEGREES: [usize; 3] = [1, 2, 8];

/// Seal runs aggressively so snapshots routinely span several sealed
/// runs plus an unsorted tail, and compaction actually fires.
fn tiny_runs() {
    delta::set_session_run_cap(Some(3));
}

/// Decode a strategy byte into an f64 payload; low codes are the
/// adversarial specials (NaN, ±∞, -0.0).
fn fval(code: u8) -> f64 {
    match code {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        c => (f64::from(c) - 128.0) * 0.625,
    }
}

/// One step of a random program over a matrix.
#[derive(Debug, Clone)]
enum Step {
    /// Pending-buffer append.
    Set(usize, usize, u8),
    /// Tombstone append.
    Remove(usize, usize),
    /// Take a snapshot here; it must forever read the state at this
    /// point.
    Snap,
    /// A completion-forcing read: drains the log and installs a new
    /// base — live snapshots must not notice.
    Force,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N).prop_map(|(i, j)| Step::Remove(i, j)),
        Just(Step::Snap),
        Just(Step::Force),
    ]
}

type Shadow = BTreeMap<(usize, usize), u64>;

fn shadow_tuples(s: &Shadow) -> Vec<(usize, usize, u64)> {
    s.iter().map(|(&(i, j), &b)| (i, j, b)).collect()
}

fn matrix_bits(m: &Matrix<f64>) -> Vec<(usize, usize, u64)> {
    m.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect()
}

fn snapshot_bits(s: &MatrixSnapshot<f64>) -> Vec<(usize, usize, u64)> {
    s.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect()
}

/// Interpret `steps`, pairing every snapshot with the shadow state at
/// its instant; verify every pair after the whole program (writes,
/// forces, compactions) has run.
fn check_program(steps: &[Step], format: Option<Format>) -> std::result::Result<(), String> {
    let m = Matrix::<f64>::new(N, N).unwrap();
    if let Some(f) = format {
        m.set_format(f).unwrap();
    }
    let mut model = Shadow::new();
    let mut snaps: Vec<(MatrixSnapshot<f64>, Shadow)> = Vec::new();
    for step in steps {
        match *step {
            Step::Set(i, j, c) => {
                m.set(i, j, fval(c)).unwrap();
                model.insert((i, j), fval(c).to_bits());
            }
            Step::Remove(i, j) => {
                m.remove(i, j).unwrap();
                model.remove(&(i, j));
            }
            Step::Snap => snaps.push((m.snapshot(), model.clone())),
            Step::Force => {
                let _ = m.nvals().unwrap();
            }
        }
    }
    // One final snapshot so every program checks at least one.
    snaps.push((m.snapshot(), model.clone()));
    let _ = m.nvals().unwrap(); // drain whatever is still pending
    for (k, (snap, at)) in snaps.iter().enumerate() {
        let want = shadow_tuples(at);
        if snap.nvals().unwrap() != at.len() {
            return Err(format!("snapshot {k}: nvals diverged"));
        }
        let got = snapshot_bits(snap);
        if got != want {
            return Err(format!(
                "snapshot {k}: tuples diverged\n got {got:?}\nwant {want:?}"
            ));
        }
        // The frozen-handle path the server uses: to_matrix() shares
        // the overlay node with the snapshot and must read the same.
        let frozen = snap.to_matrix();
        if matrix_bits(&frozen) != want {
            return Err(format!("snapshot {k}: to_matrix() diverged"));
        }
        // Point probes walk sealed runs newest-first, not the merge.
        for &(i, j, bits) in want.iter().take(4) {
            if snap.get(i, j).unwrap().map(f64::to_bits) != Some(bits) {
                return Err(format!("snapshot {k}: get({i},{j}) diverged"));
            }
        }
    }
    Ok(())
}

/// Shadow degrees: per-row / per-column stored-element counts of a
/// shadow state.
fn shadow_degrees(s: &Shadow) -> (Vec<usize>, Vec<usize>) {
    let (mut r, mut c) = (vec![0usize; N], vec![0usize; N]);
    for &(i, j) in s.keys() {
        r[i] += 1;
        c[j] += 1;
    }
    (r, c)
}

/// The property-cache half of snapshot isolation: the degree vectors a
/// snapshot reports are computed against (and memoized on) the
/// snapshot's own overlay-merged store, so a snapshot taken before a
/// drain must never observe degrees cached after it — no matter how
/// aggressively the live handle's caches are warmed in between.
fn check_degree_program(steps: &[Step], format: Option<Format>) -> std::result::Result<(), String> {
    let m = Matrix::<f64>::new(N, N).unwrap();
    if let Some(f) = format {
        m.set_format(f).unwrap();
    }
    let mut model = Shadow::new();
    let mut snaps: Vec<(MatrixSnapshot<f64>, Shadow)> = Vec::new();
    for step in steps {
        match *step {
            Step::Set(i, j, c) => {
                m.set(i, j, fval(c)).unwrap();
                model.insert((i, j), fval(c).to_bits());
            }
            Step::Remove(i, j) => {
                m.remove(i, j).unwrap();
                model.remove(&(i, j));
            }
            Step::Snap => snaps.push((m.snapshot(), model.clone())),
            Step::Force => {
                // Drain, then warm the live handle's property caches so
                // a leaky snapshot would have stale degrees to observe.
                let _ = m.nvals().unwrap();
                let _ = m.row_degrees().unwrap();
                let _ = m.col_degrees().unwrap();
            }
        }
    }
    snaps.push((m.snapshot(), model.clone()));
    let _ = m.nvals().unwrap();
    let live_r = m.row_degrees().unwrap();
    let live_c = m.col_degrees().unwrap();
    let (want_r, want_c) = shadow_degrees(&model);
    if &*live_r != want_r.as_slice() || &*live_c != want_c.as_slice() {
        return Err("live handle degrees diverged from final state".into());
    }
    for (k, (snap, at)) in snaps.iter().enumerate() {
        let (want_r, want_c) = shadow_degrees(at);
        let got_r = snap.row_degrees().map_err(|e| e.to_string())?;
        if &*got_r != want_r.as_slice() {
            return Err(format!(
                "snapshot {k}: row degrees diverged\n got {got_r:?}\nwant {want_r:?}"
            ));
        }
        let got_c = snap.col_degrees().map_err(|e| e.to_string())?;
        if &*got_c != want_c.as_slice() {
            return Err(format!(
                "snapshot {k}: col degrees diverged\n got {got_c:?}\nwant {want_c:?}"
            ));
        }
        // Second read exercises the memoized path.
        if snap.row_degrees().map_err(|e| e.to_string())? != got_r {
            return Err(format!("snapshot {k}: memoized row degrees unstable"));
        }
    }
    Ok(())
}

/// Run `f` with the intra-kernel degree pinned to `k` and the cost
/// model forced so even proptest-sized fixtures chunk.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

const FORMATS: [Option<Format>; 3] = [None, Some(Format::Csr), Some(Format::Bitmap)];

fn contexts() -> [Context; 3] {
    [
        Context::blocking(),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: at every (mode, format, degree), a
    /// snapshot at epoch E reads bitwise the shadow state at E.
    #[test]
    fn snapshot_reads_the_state_at_its_epoch(
        steps in proptest::collection::vec(step_strategy(), 1..32),
    ) {
        tiny_runs();
        for ctx in contexts() {
            // Snapshots are context-independent, but run the program
            // under each context's completion discipline anyway: in
            // blocking mode Force has already drained, in nonblocking
            // the log is deep.
            let _ = &ctx;
            for format in FORMATS {
                for k in DEGREES {
                    if let Err(msg) = at_degree(k, || check_program(&steps, format)) {
                        panic!(
                            "mode {:?} format {:?} degree {}: {}",
                            ctx.mode(), format, k, msg
                        );
                    }
                }
            }
        }
    }

    /// The cached-property face of the same property: degree vectors
    /// read through a snapshot reflect the snapshot's epoch, not the
    /// live handle's post-drain caches.
    #[test]
    fn snapshot_degrees_are_isolated_from_later_drains(
        steps in proptest::collection::vec(step_strategy(), 1..32),
    ) {
        tiny_runs();
        for format in FORMATS {
            for k in DEGREES {
                if let Err(msg) = at_degree(k, || check_degree_program(&steps, format)) {
                    panic!("format {:?} degree {}: {}", format, k, msg);
                }
            }
        }
    }

    /// A snapshot of a vector behaves identically (the vector-side
    /// overlay shares no code path accidents with the matrix side).
    #[test]
    fn vector_snapshot_reads_the_state_at_its_epoch(
        raw in proptest::collection::vec((0..N, any::<u8>(), any::<bool>()), 1..48),
    ) {
        tiny_runs();
        let v = Vector::<f64>::new(N).unwrap();
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        let mut snaps = Vec::new();
        for (step, &(i, c, put)) in raw.iter().enumerate() {
            if put {
                v.set(i, fval(c)).unwrap();
                model.insert(i, fval(c).to_bits());
            } else {
                v.remove(i).unwrap();
                model.remove(&i);
            }
            if step % 5 == 4 {
                snaps.push((v.snapshot(), model.clone()));
            }
            if step % 11 == 10 {
                let _ = v.nvals().unwrap();
            }
        }
        snaps.push((v.snapshot(), model.clone()));
        let _ = v.nvals().unwrap();
        for (snap, at) in &snaps {
            let want: Vec<(usize, u64)> = at.iter().map(|(&i, &b)| (i, b)).collect();
            let got: Vec<(usize, u64)> = snap
                .extract_tuples()
                .unwrap()
                .into_iter()
                .map(|(i, x)| (i, x.to_bits()))
                .collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(snap.nvals().unwrap(), at.len());
        }
    }
}

/// The concurrent form of the property: a writer thread hammers the
/// matrix (sets, removes, and forcing reads that install new bases)
/// while the reader re-reads one pinned snapshot; every read must see
/// the pre-writer state, and no read may block on the writer's merges.
#[test]
fn snapshot_stable_under_concurrent_writes_and_forces() {
    tiny_runs();
    const M: usize = 64;
    let m = Matrix::<f64>::new(M, M).unwrap();
    for i in 0..M {
        m.set(i, i, i as f64).unwrap();
    }
    let snap = m.snapshot();
    let want: Vec<(usize, usize, u64)> = (0..M).map(|i| (i, i, (i as f64).to_bits())).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let m = m.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let (i, j) = (k * 7 % M, k * 13 % M);
                if k % 5 == 4 {
                    m.remove(i, j).unwrap();
                } else {
                    m.set(i, j, k as f64).unwrap();
                }
                if k % 97 == 96 {
                    // Completion-forcing read: drains the log and
                    // installs a fresh base under the snapshot.
                    let _ = m.nvals().unwrap();
                }
                k += 1;
            }
        })
    };

    for _ in 0..200 {
        assert_eq!(snapshot_bits(&snap), want);
        assert_eq!(snap.nvals().unwrap(), M);
        assert_eq!(snap.get(7, 7).unwrap(), Some(7.0));
        assert_eq!(snap.get(0, 1).unwrap(), None);
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// Same-epoch snapshots share one overlay node even when taken from
/// clones on different threads.
#[test]
fn cross_thread_snapshots_agree() {
    tiny_runs();
    let m = Matrix::<f64>::new(8, 8).unwrap();
    for i in 0..8 {
        m.set(i, 7 - i, 1.0 + i as f64).unwrap();
    }
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                let s = m.snapshot();
                (s.epoch(), snapshot_bits(&s))
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.dedup();
    assert_eq!(
        results.len(),
        1,
        "all same-epoch snapshots read the same bits"
    );
}
