//! The §IV fusion latitude observed from the outside: the `exec::fuse`
//! rewrite pass may only change *how* a pending DAG executes, never what
//! a program can observe. These tests drive each rewrite through the
//! public API, assert that it actually fired (via the `"fused"` trace
//! events), and check the results against a `FusePolicy::Off` run of the
//! same program.

use graphblas_core::prelude::*;

fn mat(t: &[(usize, usize, i64)]) -> Matrix<i64> {
    Matrix::from_tuples(4, 4, t).unwrap()
}

fn a_tuples() -> Vec<(usize, usize, i64)> {
    vec![(0, 0, 2), (0, 2, -1), (1, 1, 3), (2, 0, 4), (3, 3, 5)]
}

fn b_tuples() -> Vec<(usize, usize, i64)> {
    vec![(0, 1, 1), (1, 1, -2), (2, 3, 7), (3, 0, 6)]
}

fn ctx_with(fuse: FusePolicy) -> Context {
    Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Sequential, fuse)
}

/// The `"fused"` notes recorded in a drained trace.
fn fused_notes(trace: &[TraceEvent]) -> Vec<FusedNote> {
    trace
        .iter()
        .filter(|e| e.kind == "fused")
        .map(|e| e.fused.unwrap())
        .collect()
}

/// Kinds of the nodes the scheduler actually ran (fusion notes excluded).
fn scheduled_kinds(trace: &[TraceEvent]) -> Vec<&'static str> {
    trace
        .iter()
        .filter(|e| e.kind != "fused")
        .map(|e| e.kind)
        .collect()
}

/// mxm → masked apply, with the intermediate handle dropped before
/// `wait()`: the headline rewrite. The mask is pushed down into the
/// producer's compute and the mxm node is never scheduled.
fn masked_apply_over_mxm(fuse: FusePolicy) -> (Vec<(usize, usize, i64)>, Vec<TraceEvent>) {
    let ctx = ctx_with(fuse);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let b = mat(&b_tuples());
    let mask = mat(&[(0, 1, 1), (2, 3, 1)]);
    let out = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    ctx.mxm(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    ctx.apply_matrix(&out, &mask, NoAccum, Identity::new(), &tmp, &d)
        .unwrap();
    drop(tmp); // intermediate becomes exclusively dead
    ctx.wait().unwrap();
    (out.extract_tuples().unwrap(), ctx.take_trace())
}

#[test]
fn mask_pushdown_absorbs_the_mxm_producer() {
    let (fused_out, trace) = masked_apply_over_mxm(FusePolicy::On);
    let notes = fused_notes(&trace);
    assert_eq!(notes.len(), 1, "trace: {trace:?}");
    assert_eq!(notes[0].rewrite, "mask-pushdown");
    assert_eq!(notes[0].producer, "mxm");
    assert_eq!(notes[0].consumer, "apply");
    // the absorbed mxm never reaches the scheduler; only the fused
    // apply node runs
    assert_eq!(scheduled_kinds(&trace), vec!["apply"]);

    let (plain_out, off_trace) = masked_apply_over_mxm(FusePolicy::Off);
    assert!(fused_notes(&off_trace).is_empty());
    assert_eq!(scheduled_kinds(&off_trace), vec!["mxm", "apply"]);
    assert_eq!(fused_out, plain_out);
}

/// mxv → masked apply_vector: the vector-side mask pushdown.
#[test]
fn mask_pushdown_works_on_vectors() {
    let run = |fuse: FusePolicy| {
        let ctx = ctx_with(fuse);
        ctx.enable_trace(true);
        let a = mat(&a_tuples());
        let u = Vector::from_dense(&[1i64, 2, 3, 4]).unwrap();
        let mask = Vector::from_tuples(4, &[(0, true), (3, true)]).unwrap();
        let out = Vector::<i64>::new(4).unwrap();
        let d = Descriptor::default();
        let tmp = Vector::<i64>::new(4).unwrap();
        ctx.mxv(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &u, &d)
            .unwrap();
        ctx.apply_vector(&out, &mask, NoAccum, Identity::new(), &tmp, &d)
            .unwrap();
        drop(tmp);
        ctx.wait().unwrap();
        (out.extract_tuples().unwrap(), ctx.take_trace())
    };
    let (fused_out, trace) = run(FusePolicy::On);
    let notes = fused_notes(&trace);
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rewrite, "mask-pushdown");
    assert_eq!(notes[0].producer, "mxv");
    assert_eq!(scheduled_kinds(&trace), vec!["apply"]);
    let (plain_out, _) = run(FusePolicy::Off);
    assert_eq!(fused_out, plain_out);
}

/// apply ∘ apply ∘ apply over a complete input collapses to one node:
/// the pass cascades, each hook composing over the producer's
/// (re-installed) face.
#[test]
fn apply_chains_cascade_into_one_node() {
    let run = |fuse: FusePolicy| {
        let ctx = ctx_with(fuse);
        ctx.enable_trace(true);
        let a = mat(&a_tuples());
        let out = Matrix::<i64>::new(4, 4).unwrap();
        let d = Descriptor::default();
        let tmp1 = Matrix::<i64>::new(4, 4).unwrap();
        let tmp2 = Matrix::<i64>::new(4, 4).unwrap();
        ctx.apply_matrix(&tmp1, NoMask, NoAccum, unary_fn(|x: &i64| x * 10), &a, &d)
            .unwrap();
        ctx.apply_matrix(&tmp2, NoMask, NoAccum, unary_fn(|x: &i64| x + 1), &tmp1, &d)
            .unwrap();
        ctx.apply_matrix(&out, NoMask, NoAccum, unary_fn(|x: &i64| -x), &tmp2, &d)
            .unwrap();
        drop(tmp1);
        drop(tmp2);
        ctx.wait().unwrap();
        (out.extract_tuples().unwrap(), ctx.take_trace())
    };
    let (fused_out, trace) = run(FusePolicy::On);
    let notes = fused_notes(&trace);
    assert_eq!(notes.len(), 2, "trace: {trace:?}");
    for n in &notes {
        assert_eq!(n.rewrite, "apply-chain");
        assert_eq!(n.producer, "apply");
        assert_eq!(n.consumer, "apply");
    }
    assert_eq!(scheduled_kinds(&trace), vec!["apply"]);
    let (plain_out, off_trace) = run(FusePolicy::Off);
    assert_eq!(scheduled_kinds(&off_trace), vec!["apply", "apply", "apply"]);
    assert_eq!(fused_out, plain_out);
    let expect: Vec<_> = a_tuples()
        .into_iter()
        .map(|(i, j, v)| (i, j, -(v * 10 + 1)))
        .collect();
    assert_eq!(fused_out, expect);
}

/// An unmasked apply over a pending mxm has no mask to push down and no
/// lazy face on the producer; it still absorbs it as a plain
/// apply-into-producer rewrite.
#[test]
fn unmasked_apply_absorbs_mxm() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let b = mat(&b_tuples());
    let out = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    ctx.mxm(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    ctx.apply_matrix(&out, NoMask, NoAccum, unary_fn(|x: &i64| x * 2), &tmp, &d)
        .unwrap();
    drop(tmp);
    ctx.wait().unwrap();
    let trace = ctx.take_trace();
    let notes = fused_notes(&trace);
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rewrite, "apply-into-producer");
    assert_eq!(notes[0].producer, "mxm");
    assert_eq!(scheduled_kinds(&trace), vec!["apply"]);
}

/// eWiseMult → scalar reduce folds element-by-element without ever
/// materializing the product — the fused dot product. The producer is
/// left pending (its value was never needed) and still forces cleanly
/// afterwards.
#[test]
fn dot_reduce_fuses_vector_ewise_mult() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let u = Vector::from_dense(&[1i64, 2, 3, 4]).unwrap();
    let v = Vector::from_dense(&[5i64, 6, 7, 8]).unwrap();
    let tmp = Vector::<i64>::new(4).unwrap();
    let d = Descriptor::default();
    ctx.ewise_mult_vector(&tmp, NoMask, NoAccum, Times::new(), &u, &v, &d)
        .unwrap();
    let s = ctx
        .reduce_vector_to_scalar(PlusMonoid::<i64>::new(), &tmp)
        .unwrap();
    assert_eq!(s, 5 + 12 + 21 + 32);
    let notes = fused_notes(&ctx.take_trace());
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rewrite, "dot-reduce");
    assert_eq!(notes[0].producer, "eWiseMult");
    assert_eq!(notes[0].consumer, "reduce");
    // the intermediate was never computed ...
    assert!(!tmp.is_complete());
    // ... but forcing it later still works
    assert_eq!(
        tmp.extract_tuples().unwrap(),
        vec![(0, 5), (1, 12), (2, 21), (3, 32)]
    );
}

#[test]
fn dot_reduce_fuses_matrix_ewise_mult() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    ctx.ewise_mult_matrix(&tmp, NoMask, NoAccum, Times::new(), &a, &a, &d)
        .unwrap();
    let s = ctx
        .reduce_matrix_to_scalar(PlusMonoid::<i64>::new(), &tmp)
        .unwrap();
    // Σ v² over A's entries
    let expect: i64 = a_tuples().iter().map(|&(_, _, v)| v * v).sum();
    assert_eq!(s, expect);
    let notes = fused_notes(&ctx.take_trace());
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rewrite, "dot-reduce");
    assert!(!tmp.is_complete());
}

/// A live handle on the intermediate is an observation the rewrite must
/// respect: the program could still read `tmp`, so nothing fuses.
#[test]
fn live_intermediate_handle_blocks_fusion() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let b = mat(&b_tuples());
    let mask = mat(&[(0, 1, 1)]);
    let out = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    ctx.mxm(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    ctx.apply_matrix(&out, &mask, NoAccum, Identity::new(), &tmp, &d)
        .unwrap();
    ctx.wait().unwrap(); // tmp still in scope
    let trace = ctx.take_trace();
    assert!(fused_notes(&trace).is_empty(), "trace: {trace:?}");
    assert_eq!(scheduled_kinds(&trace), vec!["mxm", "apply"]);
    assert!(tmp.is_complete());
}

/// `dup()` aliases the pending node into a second object, so dropping
/// the original handle no longer makes the node unobservable.
#[test]
fn dup_pins_the_producer_against_fusion() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let b = mat(&b_tuples());
    let out = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    ctx.mxm(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    let alias = tmp.dup();
    ctx.apply_matrix(&out, NoMask, NoAccum, Identity::new(), &tmp, &d)
        .unwrap();
    drop(tmp);
    ctx.wait().unwrap();
    let trace = ctx.take_trace();
    assert!(fused_notes(&trace).is_empty(), "trace: {trace:?}");
    assert!(alias.is_complete());
    assert_eq!(
        alias.extract_tuples().unwrap(),
        out.extract_tuples().unwrap()
    );
}

/// Two consumers of the same dead intermediate: the edge count is 2, so
/// neither absorbs it — it must compute once and be shared.
#[test]
fn shared_intermediate_is_not_absorbed() {
    let ctx = ctx_with(FusePolicy::On);
    ctx.enable_trace(true);
    let a = mat(&a_tuples());
    let out1 = Matrix::<i64>::new(4, 4).unwrap();
    let out2 = Matrix::<i64>::new(4, 4).unwrap();
    let d = Descriptor::default();
    let tmp = Matrix::<i64>::new(4, 4).unwrap();
    ctx.apply_matrix(&tmp, NoMask, NoAccum, unary_fn(|x: &i64| x * 10), &a, &d)
        .unwrap();
    ctx.apply_matrix(&out1, NoMask, NoAccum, unary_fn(|x: &i64| x + 1), &tmp, &d)
        .unwrap();
    ctx.ewise_add_matrix(&out2, NoMask, NoAccum, Plus::new(), &a, &tmp, &d)
        .unwrap();
    drop(tmp);
    ctx.wait().unwrap();
    let trace = ctx.take_trace();
    assert!(fused_notes(&trace).is_empty(), "trace: {trace:?}");
    assert_eq!(scheduled_kinds(&trace), vec!["apply", "apply", "eWiseAdd"]);
    let expect1: Vec<_> = a_tuples()
        .into_iter()
        .map(|(i, j, v)| (i, j, v * 10 + 1))
        .collect();
    assert_eq!(out1.extract_tuples().unwrap(), expect1);
}

/// `FusePolicy::Off` is the ablation baseline: every node executes as
/// written.
#[test]
fn fuse_policy_off_disables_every_rewrite() {
    let ctx = ctx_with(FusePolicy::Off);
    assert_eq!(ctx.fuse_policy(), FusePolicy::Off);
    ctx.enable_trace(true);
    let u = Vector::from_dense(&[1i64, 2, 3]).unwrap();
    let tmp = Vector::<i64>::new(3).unwrap();
    let d = Descriptor::default();
    ctx.ewise_mult_vector(&tmp, NoMask, NoAccum, Times::new(), &u, &u, &d)
        .unwrap();
    let s = ctx
        .reduce_vector_to_scalar(PlusMonoid::<i64>::new(), &tmp)
        .unwrap();
    assert_eq!(s, 1 + 4 + 9);
    assert!(fused_notes(&ctx.take_trace()).is_empty());
    // the unfused path had to materialize the intermediate
    assert!(tmp.is_complete());
}

/// Blocking mode completes each operation inline, so there is never a
/// pending producer to absorb — fusion is structurally inert.
#[test]
fn blocking_mode_never_fuses() {
    let ctx = Context::blocking();
    ctx.enable_trace(true);
    let u = Vector::from_dense(&[1i64, 2, 3]).unwrap();
    let tmp = Vector::<i64>::new(3).unwrap();
    let d = Descriptor::default();
    ctx.ewise_mult_vector(&tmp, NoMask, NoAccum, Times::new(), &u, &u, &d)
        .unwrap();
    let s = ctx
        .reduce_vector_to_scalar(PlusMonoid::<i64>::new(), &tmp)
        .unwrap();
    assert_eq!(s, 14);
    assert!(fused_notes(&ctx.take_trace()).is_empty());
    assert!(tmp.is_complete());
}

/// The parallel driver sees the same rewritten DAG: fusion composes with
/// either scheduling policy and the results agree.
#[test]
fn fusion_composes_with_the_parallel_scheduler() {
    let run = |policy: SchedPolicy, fuse: FusePolicy| {
        let ctx = Context::with_fuse_policy(Mode::Nonblocking, policy, fuse);
        let a = mat(&a_tuples());
        let b = mat(&b_tuples());
        let mask = mat(&[(0, 1, 1), (2, 3, 1), (3, 0, 1)]);
        let out = Matrix::<i64>::new(4, 4).unwrap();
        let d = Descriptor::default();
        let tmp = Matrix::<i64>::new(4, 4).unwrap();
        ctx.mxm(&tmp, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
            .unwrap();
        ctx.apply_matrix(&out, &mask, NoAccum, Identity::new(), &tmp, &d)
            .unwrap();
        drop(tmp);
        ctx.wait().unwrap();
        out.extract_tuples().unwrap()
    };
    let reference = run(SchedPolicy::Sequential, FusePolicy::Off);
    assert_eq!(run(SchedPolicy::Sequential, FusePolicy::On), reference);
    assert_eq!(run(SchedPolicy::Parallel, FusePolicy::On), reference);
    assert_eq!(run(SchedPolicy::Parallel, FusePolicy::Off), reference);
}
