//! Property-based checks of the algebraic laws the GraphBLAS assumes:
//! monoid identity/associativity for every predefined monoid, semiring
//! distributivity samples, and the full lattice of power-set laws on
//! arbitrary small sets (Table I row 5).

use graphblas_core::algebra::binary::BinaryOp;
use graphblas_core::algebra::set::SmallSet;
use graphblas_core::prelude::*;
use proptest::prelude::*;

fn small_set() -> impl Strategy<Value = SmallSet> {
    proptest::collection::vec(0u32..12, 0..8).prop_map(SmallSet::from_iter_unsorted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn power_set_semiring_laws(a in small_set(), b in small_set(), c in small_set()) {
        // commutativity
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // associativity
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        // ⊕ identity and ⊗ annihilator at ∅ (the semiring 0)
        prop_assert_eq!(a.union(&SmallSet::empty()), a.clone());
        prop_assert_eq!(a.intersect(&SmallSet::empty()), SmallSet::empty());
        // distributivity of ⊗ over ⊕
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
        // idempotence (lattice structure)
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        // absorption
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
    }

    #[test]
    fn integer_monoid_laws(x in -1000i64..1000, y in -1000i64..1000, z in -1000i64..1000) {
        fn laws<M: Monoid<i64>>(m: &M, x: i64, y: i64, z: i64) {
            let id = m.identity();
            assert_eq!(m.apply(&x, &id), x);
            assert_eq!(m.apply(&id, &x), x);
            assert_eq!(m.apply(&m.apply(&x, &y), &z), m.apply(&x, &m.apply(&y, &z)));
        }
        laws(&PlusMonoid::<i64>::new(), x, y, z);
        laws(&MinMonoid::<i64>::new(), x, y, z);
        laws(&MaxMonoid::<i64>::new(), x, y, z);
        // Times is associative with wrapping arithmetic too
        laws(&TimesMonoid::<i64>::new(), x, y, z);
    }

    #[test]
    fn tropical_semiring_distributivity(
        a in -100i64..100, b in -100i64..100, c in -100i64..100,
    ) {
        // min-plus: a + min(b, c) == min(a+b, a+c)
        let s = min_plus::<i64>();
        let lhs = s.mul().apply(&a, &s.add().apply(&b, &c));
        let rhs = s.add().apply(&s.mul().apply(&a, &b), &s.mul().apply(&a, &c));
        prop_assert_eq!(lhs, rhs);
        // max-plus mirrors it
        let s = max_plus::<i64>();
        let lhs = s.mul().apply(&a, &s.add().apply(&b, &c));
        let rhs = s.add().apply(&s.mul().apply(&a, &b), &s.mul().apply(&a, &c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gf2_is_a_field_fragment(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let s = xor_and();
        // distributivity: a ∧ (b ⊻ c) == (a ∧ b) ⊻ (a ∧ c)
        let lhs = s.mul().apply(&a, &s.add().apply(&b, &c));
        let rhs = s.add().apply(&s.mul().apply(&a, &b), &s.mul().apply(&a, &c));
        prop_assert_eq!(lhs, rhs);
        // xor self-inverse
        prop_assert_eq!(s.add().apply(&a, &a), false);
    }

    #[test]
    fn min_max_absorption(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let s = min_max::<i64>();
        // max distributes over min on a totally ordered domain
        let lhs = s.mul().apply(&a, &s.add().apply(&b, &c));
        let rhs = s.add().apply(&s.mul().apply(&a, &b), &s.mul().apply(&a, &c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn set_operations_membership_model(a in small_set(), b in small_set()) {
        for x in 0u32..14 {
            prop_assert_eq!(a.union(&b).contains(x), a.contains(x) || b.contains(x));
            prop_assert_eq!(a.intersect(&b).contains(x), a.contains(x) && b.contains(x));
        }
    }
}
