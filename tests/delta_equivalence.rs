//! PR acceptance property for the pending-update buffer
//! (`storage::delta`): a random interleaving of point mutations
//! (`set` / `remove` / 1×1 scalar `assign`) with completion-forcing
//! operations (`mxm`, `mxv`, row/scalar `reduce`, `nvals`) yields
//! **bitwise** identical observables whether the mutations are left
//! deferred in the delta log until a read forces the merge, or eagerly
//! flushed after every step — across execution modes, storage formats,
//! and intra-kernel parallelism degrees, with NaN / ±∞ / -0.0 payloads
//! included. This is the "deferred ≡ eager" acceptance criterion.

use graphblas_core::par;
use graphblas_core::prelude::*;
use graphblas_core::SchedPolicy;
use proptest::prelude::*;

const N: usize = 16;
const DEGREES: [usize; 3] = [1, 2, 8];

/// Decode a strategy byte into an f64 payload; low codes are the
/// adversarial specials (NaN, ±∞, -0.0).
fn fval(code: u8) -> f64 {
    match code {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        c => (f64::from(c) - 128.0) * 0.625,
    }
}

type Tuples = Vec<(usize, usize, u8)>;

fn sparse(max_nnz: usize) -> impl Strategy<Value = Tuples> {
    proptest::collection::vec((0..N, 0..N, 0u8..255), 0..=max_nnz).prop_map(|mut t| {
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        t
    })
}

/// One step of a random program over a matrix `m` and a vector `u`.
#[derive(Debug, Clone)]
enum Step {
    /// `m.set(i, j, v)` — O(1) append to the pending buffer.
    Set(usize, usize, u8),
    /// `m.remove(i, j)` — tombstone append (no-op if absent).
    Remove(usize, usize),
    /// 1×1 unmasked no-accum scalar assign — routed through the same
    /// pending buffer by the fast path.
    AssignPoint(usize, usize, u8),
    /// `u.set(i, v)` / `u.remove(i)` — the vector-side buffer.
    VSet(usize, u8),
    VRemove(usize),
    /// `out = m ⊕.⊗ m` — kernel input resolution forces the flush.
    Mxm,
    /// `w = m ⊕.⊗ u` — forces both buffers.
    Mxv,
    /// Row reduction plus a scalar reduction (an immediate read).
    Reduce,
    /// `m.nvals()` — a completion-forcing query mid-program.
    Nvals,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored proptest has no weighted prop_oneof; repeating the
    // point-mutation arms biases programs toward long deferral chains.
    prop_oneof![
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::Set(i, j, c)),
        (0..N, 0..N).prop_map(|(i, j)| Step::Remove(i, j)),
        (0..N, 0..N, any::<u8>()).prop_map(|(i, j, c)| Step::AssignPoint(i, j, c)),
        (0..N, any::<u8>()).prop_map(|(i, c)| Step::VSet(i, c)),
        (0..N, any::<u8>()).prop_map(|(i, c)| Step::VSet(i, c)),
        (0..N).prop_map(Step::VRemove),
        Just(Step::Mxm),
        Just(Step::Mxv),
        Just(Step::Reduce),
        Just(Step::Nvals),
    ]
}

/// Everything a program can observe, down to the bit pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Obs {
    m: Vec<(usize, usize, u64)>,
    u: Vec<(usize, u64)>,
    outs: Vec<Vec<(usize, usize, u64)>>,
    vouts: Vec<Vec<(usize, u64)>>,
    scalars: Vec<u64>,
    nvals: Vec<usize>,
}

fn matrix_bits(m: &Matrix<f64>) -> Vec<(usize, usize, u64)> {
    m.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect()
}

fn vector_bits(v: &Vector<f64>) -> Vec<(usize, u64)> {
    v.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, x)| (i, x.to_bits()))
        .collect()
}

/// Interpret `steps` under `ctx`. With `eager` set, every point
/// mutation is followed by a `wait()` on the mutated object, so the
/// delta log never holds more than one entry; otherwise the buffer
/// accumulates until an operation or query forces the k-way merge.
fn interpret(
    ctx: &Context,
    m0: &Tuples,
    u0: &Tuples,
    steps: &[Step],
    format: Option<Format>,
    eager: bool,
) -> Obs {
    let tuples: Vec<(usize, usize, f64)> = m0.iter().map(|&(i, j, c)| (i, j, fval(c))).collect();
    let m = Matrix::from_tuples(N, N, &tuples).unwrap();
    if let Some(f) = format {
        m.set_format(f).unwrap();
    }
    let u = Vector::<f64>::new(N).unwrap();
    for &(i, _, c) in u0 {
        u.set(i, fval(c)).unwrap();
    }
    let d = Descriptor::default();
    let mut obs = Obs {
        m: Vec::new(),
        u: Vec::new(),
        outs: Vec::new(),
        vouts: Vec::new(),
        scalars: Vec::new(),
        nvals: Vec::new(),
    };
    for step in steps {
        match *step {
            Step::Set(i, j, c) => m.set(i, j, fval(c)).unwrap(),
            Step::Remove(i, j) => m.remove(i, j).unwrap(),
            Step::AssignPoint(i, j, c) => ctx
                .assign_scalar_matrix(
                    &m,
                    NoMask,
                    NoAccum,
                    fval(c),
                    IndexSelection::List(&[i]),
                    IndexSelection::List(&[j]),
                    &d,
                )
                .unwrap(),
            Step::VSet(i, c) => u.set(i, fval(c)).unwrap(),
            Step::VRemove(i) => u.remove(i).unwrap(),
            Step::Mxm => {
                let out = Matrix::<f64>::new(N, N).unwrap();
                ctx.mxm(&out, NoMask, NoAccum, plus_times::<f64>(), &m, &m, &d)
                    .unwrap();
                obs.outs.push(matrix_bits(&out));
            }
            Step::Mxv => {
                let w = Vector::<f64>::new(N).unwrap();
                ctx.mxv(&w, NoMask, NoAccum, plus_times::<f64>(), &m, &u, &d)
                    .unwrap();
                obs.vouts.push(vector_bits(&w));
            }
            Step::Reduce => {
                let w = Vector::<f64>::new(N).unwrap();
                ctx.reduce_rows(&w, NoMask, NoAccum, PlusMonoid::new(), &m, &d)
                    .unwrap();
                obs.vouts.push(vector_bits(&w));
                let s = ctx.reduce_matrix_to_scalar(PlusMonoid::new(), &m).unwrap();
                obs.scalars.push(s.to_bits());
            }
            Step::Nvals => obs.nvals.push(m.nvals().unwrap()),
        }
        if eager {
            match *step {
                Step::Set(..) | Step::Remove(..) | Step::AssignPoint(..) => m.wait().unwrap(),
                Step::VSet(..) | Step::VRemove(..) => u.wait().unwrap(),
                _ => {}
            }
        }
    }
    ctx.wait().unwrap();
    obs.m = matrix_bits(&m);
    obs.u = vector_bits(&u);
    obs
}

/// Run `f` with the intra-kernel degree pinned to `k` and the cost
/// model forced so even proptest-sized fixtures chunk. The overrides
/// are thread-local: they bind the blocking and sequential paths (which
/// compute on the calling thread); the pool path exercises its own
/// defaults, which the determinism-by-merge design makes equivalent.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

const FORMATS: [Option<Format>; 3] = [None, Some(Format::Csr), Some(Format::Bitmap)];

fn contexts() -> [Context; 3] {
    [
        Context::blocking(),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: every (mode, format, degree) × {deferred,
    /// eager} run of the same program observes the same bits as the
    /// serial eager blocking reference.
    #[test]
    fn deferred_equals_eager_bitwise(
        m0 in sparse(48),
        u0 in sparse(16),
        steps in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let reference =
            at_degree(1, || interpret(&Context::blocking(), &m0, &u0, &steps, None, true));
        for ctx in contexts() {
            for format in FORMATS {
                for k in DEGREES {
                    for eager in [false, true] {
                        let got =
                            at_degree(k, || interpret(&ctx, &m0, &u0, &steps, format, eager));
                        prop_assert_eq!(
                            &reference, &got,
                            "mode {:?} format {:?} degree {} eager {}",
                            ctx.mode(), format, k, eager
                        );
                    }
                }
            }
        }
    }

    /// Dedup inside the buffer is last-write-wins: hammering one cell
    /// with sets and removes, the only surviving value is the final one,
    /// regardless of how many runs the log sealed.
    #[test]
    fn last_write_wins_over_long_update_chains(
        raw in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..64),
    ) {
        // (false, _) encodes a remove; (true, c) a set of payload c.
        let codes: Vec<Option<u8>> =
            raw.into_iter().map(|(put, c)| put.then_some(c)).collect();
        let m = Matrix::<f64>::new(N, N).unwrap();
        for c in &codes {
            match c {
                Some(c) => m.set(3, 5, fval(*c)).unwrap(),
                None => m.remove(3, 5).unwrap(),
            }
        }
        match codes.last().unwrap() {
            Some(c) => {
                prop_assert_eq!(m.nvals().unwrap(), 1);
                prop_assert_eq!(m.get(3, 5).unwrap().unwrap().to_bits(), fval(*c).to_bits());
            }
            None => prop_assert_eq!(m.nvals().unwrap(), 0),
        }
    }
}
