//! The §V error model through the C-shaped facade: every Figure 2
//! return value reachable at runtime, exactly as a C program would see
//! them.

use std::sync::OnceLock;

use graphblas_capi as grb;
use graphblas_capi::{
    grb_binary_op_new, grb_monoid_new, grb_semiring_new, grb_type_new, Descriptor, GrbBinaryOp,
    GrbMatrix, GrbMonoid, GrbSemiring, GrbType, GrbTypeHandle, Mode, Value,
};
use graphblas_core::error::Error;

fn int32_semiring() -> GrbSemiring {
    let add = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
    GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap()
}

#[test]
fn grb_uninitialized_object() {
    // calling an operation before GrB_init (race-free: the helper holds
    // the session lock while guaranteeing no context is live)
    grb::with_no_session(|| {
        let a = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
        let e = grb::mxm(
            &a,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_UNINITIALIZED_OBJECT");
    })
    .unwrap();
}

#[test]
fn grb_dimension_mismatch() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 3).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DIMENSION_MISMATCH");
    })
    .unwrap();
}

#[test]
fn grb_domain_mismatch_everywhere_the_spec_names_it() {
    grb::with_session(Mode::Blocking, || {
        // output domain
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let c = GrbMatrix::new(GrbType::Fp64, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // accumulator domain
        let ok_out = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let bad_acc = GrbBinaryOp::plus(GrbType::Fp32).unwrap();
        let e = grb::mxm(
            &ok_out,
            None,
            Some(&bad_acc),
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // monoid construction
        let e = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Fp32(0.0))
            .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // semiring construction
        let add =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        let e = GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Fp64).unwrap()).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
    })
    .unwrap();
}

#[test]
fn grb_invalid_index_and_value() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = a.get(5, 0).unwrap_err();
        assert_eq!(e.code_name(), "GrB_INVALID_INDEX");
        // build with mismatched arrays
        let e = a
            .build(
                &[0, 1],
                &[0],
                &[Value::Int32(1)],
                &GrbBinaryOp::plus(GrbType::Int32).unwrap(),
            )
            .unwrap_err();
        assert_eq!(e.code_name(), "GrB_INVALID_VALUE");
    })
    .unwrap();
}

#[test]
fn grb_output_not_empty() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let dup = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        a.build(&[0], &[0], &[Value::Int32(1)], &dup).unwrap();
        let e = a.build(&[1], &[1], &[Value::Int32(2)], &dup).unwrap_err();
        assert_eq!(e.code_name(), "GrB_OUTPUT_NOT_EMPTY");
    })
    .unwrap();
}

#[test]
fn nonblocking_error_at_wait_with_grb_error_text() {
    grb::with_session(Mode::Nonblocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        a.set(0, 0, Value::Int32(7)).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        grb::inject_fault(Error::OutOfMemory("simulated device OOM".into())).unwrap();
        // the deferred call itself succeeds (§V: only API checks ran)
        grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        // GrB_wait reports the execution error; GrB_error has the text
        let e = grb::wait().unwrap_err();
        assert_eq!(e.code_name(), "GrB_OUT_OF_MEMORY");
        assert!(grb::error().unwrap().contains("simulated device OOM"));
        // the output object is invalid now
        assert!(c.nvals().is_err());
    })
    .unwrap();
}

#[test]
fn figure2_success_path_returns_unit() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        a.set(0, 1, Value::Int32(3)).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        // GrB_SUCCESS is the Ok arm
        let r: graphblas_core::Result<()> = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        );
        assert!(r.is_ok());
    })
    .unwrap();
}

/// §V: `GrB_error()` elaborates on "the error code returned by the last
/// method" — *API* errors included, not just execution-time ones. The
/// dimension-mismatch detail must be retrievable after the call returns.
#[test]
fn grb_error_elaborates_api_errors() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 3).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DIMENSION_MISMATCH");
        let detail = grb::error().expect("GrB_error text after an API error");
        assert_eq!(detail, e.to_string());
        assert!(detail.contains("GrB_DIMENSION_MISMATCH"), "{detail}");

        // domain mismatches are API errors too
        let f = GrbMatrix::new(GrbType::Fp64, 2, 2).unwrap();
        let e2 = grb::mxm(
            &f,
            None,
            None,
            &int32_semiring(),
            &c,
            &c,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e2.code_name(), "GrB_DOMAIN_MISMATCH");
        assert_eq!(grb::error().unwrap(), e2.to_string());
    })
    .unwrap();
}

/// Runtime-registered domain for the error-model tests (registered once:
/// the type registry is process-global and nominal).
fn errm_udt() -> GrbTypeHandle {
    static T: OnceLock<GrbTypeHandle> = OnceLock::new();
    *T.get_or_init(|| grb_type_new("ErrModelWrappedI64", 8).unwrap())
}

/// A wrapped-i64 PLUS_TIMES semiring over [`errm_udt`].
fn errm_semiring() -> &'static GrbSemiring {
    static S: OnceLock<GrbSemiring> = OnceLock::new();
    S.get_or_init(|| {
        let t = errm_udt().ty();
        let dec = |b: &[u8]| i64::from_ne_bytes(b.try_into().unwrap());
        let plus = grb_binary_op_new("errm_plus_i64", t, t, t, move |z, x, y| {
            z.copy_from_slice(&dec(x).wrapping_add(dec(y)).to_ne_bytes());
        });
        let times = grb_binary_op_new("errm_times_i64", t, t, t, move |z, x, y| {
            z.copy_from_slice(&dec(x).wrapping_mul(dec(y)).to_ne_bytes());
        });
        let add = grb_monoid_new(&plus, &0i64.to_ne_bytes()).unwrap();
        grb_semiring_new(add, times).unwrap()
    })
}

/// §V + runtime-defined algebra: a domain mismatch involving a
/// user-defined type must surface as `GrB_DOMAIN_MISMATCH`, and the
/// `GrB_error()` elaboration must name **both** domains — the registered
/// type by its registered name and the built-in by its `GrB_*` name.
#[test]
fn grb_error_names_both_domains_on_udt_mismatch() {
    grb::with_session(Mode::Blocking, || {
        let t = errm_udt();
        // UDT operand into a built-in-typed operation
        let a = GrbMatrix::new(t.ty(), 2, 2).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        let detail = grb::error().expect("GrB_error text after the API error");
        assert!(detail.contains("ErrModelWrappedI64"), "{detail}");
        assert!(detail.contains("GrB_INT32"), "{detail}");

        // implicit casts never cross a UDT boundary: storing a UDT
        // scalar into a built-in collection names both domains too
        let e = c
            .set(0, 0, t.value(&7i64.to_ne_bytes()).unwrap())
            .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        let detail = e.to_string();
        assert!(detail.contains("ErrModelWrappedI64"), "{detail}");
        assert!(detail.contains("GrB_INT32"), "{detail}");
    })
    .unwrap();
}

/// The trace records erased-lane execution: a node whose kernels ran a
/// runtime-registered operator carries `udf: Some(op_name)`, while nodes
/// on the monomorphized built-in lane stay `None`.
#[test]
fn trace_marks_erased_lane_nodes() {
    use graphblas_capi::{FusePolicy, SchedPolicy};
    grb::with_session_policies(
        Mode::Nonblocking,
        SchedPolicy::Sequential,
        FusePolicy::On,
        || {
            grb::enable_trace(true).unwrap();
            let t = errm_udt();
            let enc = |v: i64| t.value(&v.to_ne_bytes()).unwrap();
            let a = GrbMatrix::new(t.ty(), 2, 2).unwrap();
            a.set(0, 0, enc(2)).unwrap();
            a.set(0, 1, enc(3)).unwrap();
            a.set(1, 1, enc(4)).unwrap();
            let u = grb::GrbVector::new(t.ty(), 2).unwrap();
            u.set(0, enc(10)).unwrap();
            u.set(1, enc(20)).unwrap();
            let w = grb::GrbVector::new(t.ty(), 2).unwrap();
            grb::mxv(
                &w,
                None,
                None,
                errm_semiring(),
                &a,
                &u,
                &Descriptor::default(),
            )
            .unwrap();

            // a built-in mxv in the same session must stay unmarked
            let b = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            b.set(0, 0, Value::Int32(1)).unwrap();
            let v = grb::GrbVector::new(GrbType::Int32, 2).unwrap();
            v.set(0, Value::Int32(5)).unwrap();
            let wv = grb::GrbVector::new(GrbType::Int32, 2).unwrap();
            grb::mxv(
                &wv,
                None,
                None,
                &int32_semiring(),
                &b,
                &v,
                &Descriptor::default(),
            )
            .unwrap();

            grb::wait().unwrap();
            let trace = grb::take_trace().unwrap();
            let mxv_events: Vec<_> = trace.iter().filter(|e| e.kind == "mxv").collect();
            assert_eq!(mxv_events.len(), 2, "{trace:?}");
            let marked: Vec<&'static str> = mxv_events.iter().filter_map(|e| e.udf).collect();
            assert_eq!(marked.len(), 1, "exactly the UDT node is marked: {trace:?}");
            assert!(
                marked[0] == "errm_plus_i64" || marked[0] == "errm_times_i64",
                "marked with a registered op name, got {:?}",
                marked[0]
            );
        },
    )
    .unwrap();
}

/// The fusion policy rides through the facade's init, and the §IV
/// rewrites stay observation-equivalent across the C-shaped API.
#[test]
fn fuse_policy_config_controls_rewrites() {
    use graphblas_capi::{FusePolicy, GrbUnaryOp, SchedPolicy};
    let run = |fuse: FusePolicy| -> Vec<(usize, usize, Value)> {
        grb::with_session_policies(Mode::Nonblocking, SchedPolicy::Sequential, fuse, || {
            grb::enable_trace(true).unwrap();
            let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            a.set(0, 0, Value::Int32(2)).unwrap();
            a.set(1, 1, Value::Int32(3)).unwrap();
            let mask = GrbMatrix::new(GrbType::Bool, 2, 2).unwrap();
            mask.set(0, 0, Value::Bool(true)).unwrap();
            let out = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            {
                let tmp = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
                grb::mxm(
                    &tmp,
                    None,
                    None,
                    &int32_semiring(),
                    &a,
                    &a,
                    &Descriptor::default(),
                )
                .unwrap();
                grb::apply_matrix(
                    &out,
                    Some(&mask),
                    None,
                    &GrbUnaryOp::identity(GrbType::Int32),
                    &tmp,
                    &Descriptor::default(),
                )
                .unwrap();
            } // tmp dropped: exclusively dead before wait
            grb::wait().unwrap();
            let fused = grb::take_trace()
                .unwrap()
                .iter()
                .filter(|e| e.kind == "fused")
                .count();
            match fuse {
                FusePolicy::On => assert_eq!(fused, 1, "mask-pushdown should fire"),
                FusePolicy::Off => assert_eq!(fused, 0, "ablation baseline must not rewrite"),
            }
            out.extract_tuples().unwrap()
        })
        .unwrap()
    };
    assert_eq!(run(FusePolicy::On), run(FusePolicy::Off));
}
