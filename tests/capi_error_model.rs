//! The §V error model through the C-shaped facade: every Figure 2
//! return value reachable at runtime, exactly as a C program would see
//! them.

use graphblas_capi as grb;
use graphblas_capi::{
    Descriptor, GrbBinaryOp, GrbMatrix, GrbMonoid, GrbSemiring, GrbType, Mode, Value,
};
use graphblas_core::error::Error;

fn int32_semiring() -> GrbSemiring {
    let add = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
    GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap()
}

#[test]
fn grb_uninitialized_object() {
    // calling an operation before GrB_init (race-free: the helper holds
    // the session lock while guaranteeing no context is live)
    grb::with_no_session(|| {
        let a = GrbMatrix::new(GrbType::Int32, 1, 1).unwrap();
        let e = grb::mxm(
            &a,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_UNINITIALIZED_OBJECT");
    })
    .unwrap();
}

#[test]
fn grb_dimension_mismatch() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 3).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DIMENSION_MISMATCH");
    })
    .unwrap();
}

#[test]
fn grb_domain_mismatch_everywhere_the_spec_names_it() {
    grb::with_session(Mode::Blocking, || {
        // output domain
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let c = GrbMatrix::new(GrbType::Fp64, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // accumulator domain
        let ok_out = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let bad_acc = GrbBinaryOp::plus(GrbType::Fp32).unwrap();
        let e = grb::mxm(
            &ok_out,
            None,
            Some(&bad_acc),
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // monoid construction
        let e = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Fp32(0.0))
            .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        // semiring construction
        let add =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        let e = GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Fp64).unwrap()).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
    })
    .unwrap();
}

#[test]
fn grb_invalid_index_and_value() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = a.get(5, 0).unwrap_err();
        assert_eq!(e.code_name(), "GrB_INVALID_INDEX");
        // build with mismatched arrays
        let e = a
            .build(
                &[0, 1],
                &[0],
                &[Value::Int32(1)],
                &GrbBinaryOp::plus(GrbType::Int32).unwrap(),
            )
            .unwrap_err();
        assert_eq!(e.code_name(), "GrB_INVALID_VALUE");
    })
    .unwrap();
}

#[test]
fn grb_output_not_empty() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let dup = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        a.build(&[0], &[0], &[Value::Int32(1)], &dup).unwrap();
        let e = a.build(&[1], &[1], &[Value::Int32(2)], &dup).unwrap_err();
        assert_eq!(e.code_name(), "GrB_OUTPUT_NOT_EMPTY");
    })
    .unwrap();
}

#[test]
fn nonblocking_error_at_wait_with_grb_error_text() {
    grb::with_session(Mode::Nonblocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        a.set(0, 0, Value::Int32(7)).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        grb::inject_fault(Error::OutOfMemory("simulated device OOM".into())).unwrap();
        // the deferred call itself succeeds (§V: only API checks ran)
        grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        // GrB_wait reports the execution error; GrB_error has the text
        let e = grb::wait().unwrap_err();
        assert_eq!(e.code_name(), "GrB_OUT_OF_MEMORY");
        assert!(grb::error().unwrap().contains("simulated device OOM"));
        // the output object is invalid now
        assert!(c.nvals().is_err());
    })
    .unwrap();
}

#[test]
fn figure2_success_path_returns_unit() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        a.set(0, 1, Value::Int32(3)).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        // GrB_SUCCESS is the Ok arm
        let r: graphblas_core::Result<()> = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        );
        assert!(r.is_ok());
    })
    .unwrap();
}

/// §V: `GrB_error()` elaborates on "the error code returned by the last
/// method" — *API* errors included, not just execution-time ones. The
/// dimension-mismatch detail must be retrievable after the call returns.
#[test]
fn grb_error_elaborates_api_errors() {
    grb::with_session(Mode::Blocking, || {
        let a = GrbMatrix::new(GrbType::Int32, 2, 3).unwrap();
        let c = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
        let e = grb::mxm(
            &c,
            None,
            None,
            &int32_semiring(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e.code_name(), "GrB_DIMENSION_MISMATCH");
        let detail = grb::error().expect("GrB_error text after an API error");
        assert_eq!(detail, e.to_string());
        assert!(detail.contains("GrB_DIMENSION_MISMATCH"), "{detail}");

        // domain mismatches are API errors too
        let f = GrbMatrix::new(GrbType::Fp64, 2, 2).unwrap();
        let e2 = grb::mxm(
            &f,
            None,
            None,
            &int32_semiring(),
            &c,
            &c,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(e2.code_name(), "GrB_DOMAIN_MISMATCH");
        assert_eq!(grb::error().unwrap(), e2.to_string());
    })
    .unwrap();
}

/// The fusion policy rides through the facade's init, and the §IV
/// rewrites stay observation-equivalent across the C-shaped API.
#[test]
fn fuse_policy_config_controls_rewrites() {
    use graphblas_capi::{FusePolicy, GrbUnaryOp, SchedPolicy};
    let run = |fuse: FusePolicy| -> Vec<(usize, usize, Value)> {
        grb::with_session_policies(Mode::Nonblocking, SchedPolicy::Sequential, fuse, || {
            grb::enable_trace(true).unwrap();
            let a = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            a.set(0, 0, Value::Int32(2)).unwrap();
            a.set(1, 1, Value::Int32(3)).unwrap();
            let mask = GrbMatrix::new(GrbType::Bool, 2, 2).unwrap();
            mask.set(0, 0, Value::Bool(true)).unwrap();
            let out = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
            {
                let tmp = GrbMatrix::new(GrbType::Int32, 2, 2).unwrap();
                grb::mxm(
                    &tmp,
                    None,
                    None,
                    &int32_semiring(),
                    &a,
                    &a,
                    &Descriptor::default(),
                )
                .unwrap();
                grb::apply_matrix(
                    &out,
                    Some(&mask),
                    None,
                    &GrbUnaryOp::identity(GrbType::Int32),
                    &tmp,
                    &Descriptor::default(),
                )
                .unwrap();
            } // tmp dropped: exclusively dead before wait
            grb::wait().unwrap();
            let fused = grb::take_trace()
                .unwrap()
                .iter()
                .filter(|e| e.kind == "fused")
                .count();
            match fuse {
                FusePolicy::On => assert_eq!(fused, 1, "mask-pushdown should fire"),
                FusePolicy::Off => assert_eq!(fused, 0, "ablation baseline must not rewrite"),
            }
            out.extract_tuples().unwrap()
        })
        .unwrap()
    };
    assert_eq!(run(FusePolicy::On), run(FusePolicy::Off));
}
