//! PR acceptance property for intra-kernel parallelism: every
//! parallelized kernel is **bitwise** identical to its serial path —
//! values *and* pattern — at every worker count, NaN and ±∞ payloads
//! included. [`par::with_cost_model`]`(1, 0, …)` forces chunking even on
//! proptest-sized fixtures, and [`par::with_parallelism`] pins the
//! degree; blocking mode keeps kernels on the calling thread so the
//! thread-local overrides apply.

use graphblas_core::par;
use graphblas_core::prelude::*;
use proptest::prelude::*;

const N: usize = 24;
const DEGREES: [usize; 2] = [2, 8];

/// Decode a strategy byte into an f64 payload; low codes are the
/// adversarial specials (NaN, ±∞, -0.0).
fn fval(code: u8) -> f64 {
    match code {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        c => (f64::from(c) - 128.0) * 0.625,
    }
}

type Tuples = Vec<(usize, usize, u8)>;

fn sparse(max_nnz: usize) -> impl Strategy<Value = Tuples> {
    proptest::collection::vec((0..N, 0..N, 0u8..255), 0..=max_nnz).prop_map(|mut t| {
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        t
    })
}

fn to_matrix(t: &Tuples, format: Option<Format>) -> Matrix<f64> {
    let tuples: Vec<(usize, usize, f64)> = t.iter().map(|&(i, j, c)| (i, j, fval(c))).collect();
    let m = Matrix::from_tuples(N, N, &tuples).unwrap();
    if let Some(f) = format {
        m.set_format(f).unwrap();
    }
    m
}

fn to_vector(t: &Tuples) -> Vector<f64> {
    let v = Vector::<f64>::new(N).unwrap();
    for &(i, _, c) in t {
        v.set(i, fval(c)).unwrap();
    }
    v
}

/// Pattern + bit pattern of every stored element — the bitwise identity
/// the determinism-by-merge design promises (NaN payloads included).
fn matrix_bits(m: &Matrix<f64>) -> Vec<(usize, usize, u64)> {
    m.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect()
}

fn vector_bits(v: &Vector<f64>) -> Vec<(usize, u64)> {
    v.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, x)| (i, x.to_bits()))
        .collect()
}

/// Run `f` with the intra-kernel degree pinned to `k` and the cost model
/// forced so even tiny fixtures chunk.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

const FORMATS: [Option<Format>; 4] = [
    Some(Format::Csr),
    Some(Format::Csc),
    Some(Format::Bitmap),
    Some(Format::Hyper),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mxm_is_bitwise_deterministic_across_formats(
        a in sparse(64),
        b in sparse(64),
    ) {
        let ctx = Context::blocking();
        for fa in FORMATS {
            let am = to_matrix(&a, fa);
            let bm = to_matrix(&b, None);
            let run = |k| at_degree(k, || {
                let c = Matrix::<f64>::new(N, N).unwrap();
                ctx.mxm(&c, NoMask, NoAccum, plus_times::<f64>(), &am, &bm,
                    &Descriptor::default()).unwrap();
                matrix_bits(&c)
            });
            let serial = run(1);
            for k in DEGREES {
                prop_assert_eq!(&serial, &run(k));
            }
        }
    }

    #[test]
    fn masked_accumulated_mxm_is_bitwise_deterministic(
        c0 in sparse(48),
        a in sparse(48),
        b in sparse(48),
        mask in sparse(48),
    ) {
        // the full Figure-2 pipeline: compute, accumulate, masked write
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let bm = to_matrix(&b, None);
        let mm = to_matrix(&mask, None);
        let run = |k| at_degree(k, || {
            let c = to_matrix(&c0, None);
            ctx.mxm(&c, &mm, Accum(Plus::<f64>::new()), plus_times::<f64>(), &am, &bm,
                &Descriptor::default().structural_mask()).unwrap();
            matrix_bits(&c)
        });
        let serial = run(1);
        for k in DEGREES {
            prop_assert_eq!(&serial, &run(k));
        }
    }

    #[test]
    fn mxv_is_bitwise_deterministic(
        a in sparse(64),
        u in sparse(24),
    ) {
        let ctx = Context::blocking();
        for fa in [Some(Format::Csr), Some(Format::Bitmap)] {
            let am = to_matrix(&a, fa);
            let uv = to_vector(&u);
            let run = |k| at_degree(k, || {
                let w = Vector::<f64>::new(N).unwrap();
                ctx.mxv(&w, NoMask, NoAccum, plus_times::<f64>(), &am, &uv,
                    &Descriptor::default()).unwrap();
                vector_bits(&w)
            });
            let serial = run(1);
            for k in DEGREES {
                prop_assert_eq!(&serial, &run(k));
            }
        }
    }

    #[test]
    fn ewise_add_and_mult_are_bitwise_deterministic(
        a in sparse(64),
        b in sparse(64),
    ) {
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let bm = to_matrix(&b, None);
        let run = |k| at_degree(k, || {
            let s = Matrix::<f64>::new(N, N).unwrap();
            let p = Matrix::<f64>::new(N, N).unwrap();
            ctx.ewise_add_matrix(&s, NoMask, NoAccum, Plus::new(), &am, &bm,
                &Descriptor::default()).unwrap();
            ctx.ewise_mult_matrix(&p, NoMask, NoAccum, Times::new(), &am, &bm,
                &Descriptor::default()).unwrap();
            (matrix_bits(&s), matrix_bits(&p))
        });
        let serial = run(1);
        for k in DEGREES {
            prop_assert_eq!(&serial, &run(k));
        }
    }

    #[test]
    fn apply_is_bitwise_deterministic(a in sparse(64)) {
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let run = |k| at_degree(k, || {
            let c = Matrix::<f64>::new(N, N).unwrap();
            ctx.apply_matrix(&c, NoMask, NoAccum, Ainv::new(), &am,
                &Descriptor::default()).unwrap();
            matrix_bits(&c)
        });
        let serial = run(1);
        for k in DEGREES {
            prop_assert_eq!(&serial, &run(k));
        }
    }

    #[test]
    fn reductions_are_bitwise_deterministic(a in sparse(96)) {
        // float ⊕ is non-associative, so the tree merge uses the same
        // fixed chunking on the serial and parallel paths — the scalar
        // results must match to the bit, NaN included.
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let run = |k| at_degree(k, || {
            let w = Vector::<f64>::new(N).unwrap();
            ctx.reduce_rows(&w, NoMask, NoAccum, PlusMonoid::new(), &am,
                &Descriptor::default()).unwrap();
            let s = ctx.reduce_matrix_to_scalar(PlusMonoid::new(), &am).unwrap();
            (vector_bits(&w), s.to_bits())
        });
        let serial = run(1);
        for k in DEGREES {
            prop_assert_eq!(&serial, &run(k));
        }
    }

    #[test]
    fn assign_and_extract_are_bitwise_deterministic(
        c0 in sparse(48),
        a in sparse(48),
    ) {
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let run = |k| at_degree(k, || {
            let c = to_matrix(&c0, None);
            ctx.assign_matrix(&c, NoMask, Accum(Plus::<f64>::new()), &am, ALL, ALL,
                &Descriptor::default()).unwrap();
            let sub = Matrix::<f64>::new(N / 2, N).unwrap();
            let rows: Vec<usize> = (0..N / 2).map(|i| 2 * i).collect();
            ctx.extract_matrix(&sub, NoMask, NoAccum, &c,
                IndexSelection::List(&rows), ALL, &Descriptor::default()).unwrap();
            (matrix_bits(&c), matrix_bits(&sub))
        });
        let serial = run(1);
        for k in DEGREES {
            prop_assert_eq!(&serial, &run(k));
        }
    }
}
