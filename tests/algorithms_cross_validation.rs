//! Cross-validation of every `graphblas-algorithms` routine against its
//! independent `graphblas-reference` baseline over generated graphs.

use graphblas_algorithms as alg;
use graphblas_core::prelude::*;
use graphblas_gen::{erdos_renyi_gnm, grid2d, rmat, EdgeList, RmatParams};
use graphblas_reference as refr;
use graphblas_reference::{AdjGraph, WeightedGraph};

fn bool_matrix(g: &EdgeList) -> Matrix<bool> {
    Matrix::from_tuples(g.n, g.n, &g.bool_tuples()).unwrap()
}

fn test_graphs() -> Vec<EdgeList> {
    vec![
        erdos_renyi_gnm(30, 90, 1).without_self_loops().dedup(),
        erdos_renyi_gnm(50, 100, 2).without_self_loops().dedup(),
        rmat(6, 6, RmatParams::default(), 3)
            .without_self_loops()
            .dedup(),
        grid2d(5, 6),
        EdgeList::new(10, vec![(0, 1), (1, 2), (5, 6)]),
    ]
}

#[test]
fn bfs_levels_match() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let a = bool_matrix(&g);
        let adj = AdjGraph::from_edges(g.n, &g.edges);
        for src in [0, g.n / 2, g.n - 1] {
            assert_eq!(
                alg::bfs_levels(&ctx, &a, src).unwrap(),
                refr::traversal::bfs_levels(&adj, src),
                "graph n={} src={src}",
                g.n
            );
        }
    }
}

#[test]
fn bfs_parents_match_min_id_tie_breaking() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let a = bool_matrix(&g);
        let adj = AdjGraph::from_edges(g.n, &g.edges);
        let src = 0;
        assert_eq!(
            alg::bfs_parents(&ctx, &a, src).unwrap(),
            refr::traversal::bfs_parents(&adj, src),
            "graph n={}",
            g.n
        );
    }
}

#[test]
fn sssp_matches_dijkstra() {
    let ctx = Context::blocking();
    for (k, g) in test_graphs().into_iter().enumerate() {
        let wt = g.weighted_tuples(0.5, 5.0, 100 + k as u64);
        let a = Matrix::from_tuples(g.n, g.n, &wt).unwrap();
        let wg = WeightedGraph::from_edges(g.n, &wt);
        let got = alg::sssp_bellman_ford(&ctx, &a, 0).unwrap();
        let want = refr::paths::dijkstra(&wg, 0);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            match (x, y) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "vertex {i}"),
                (None, None) => {}
                other => panic!("vertex {i}: {other:?}"),
            }
        }
    }
}

#[test]
fn triangles_match() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let und = g.symmetrize().without_self_loops();
        let a = bool_matrix(&und);
        let adj = AdjGraph::from_edges(und.n, &und.edges);
        assert_eq!(
            alg::triangle_count(&ctx, &a).unwrap(),
            refr::triangles::triangle_count(&adj),
            "n={}",
            und.n
        );
        let got = alg::triangle_counts_per_vertex(&ctx, &a).unwrap();
        let want = refr::triangles::triangle_counts_per_vertex(&adj);
        assert_eq!(got, want);
    }
}

#[test]
fn pagerank_matches() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let a = bool_matrix(&g);
        let adj = AdjGraph::from_edges(g.n, &g.edges);
        let (got, _) = alg::pagerank(&ctx, &a, 0.85, 1e-12, 300).unwrap();
        let (want, _) = refr::pagerank::pagerank(&adj, 0.85, 1e-12, 300);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            assert!((x - y).abs() < 1e-8, "vertex {i}: {x} vs {y}");
        }
    }
}

#[test]
fn components_match() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let und = g.symmetrize();
        let a = bool_matrix(&und);
        let adj = AdjGraph::from_edges(und.n, &und.edges);
        assert_eq!(
            alg::connected_components(&ctx, &a).unwrap(),
            refr::components::connected_components(&adj),
            "n={}",
            und.n
        );
    }
}

#[test]
fn reachability_matches_bfs() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let a = bool_matrix(&g);
        let adj = AdjGraph::from_edges(g.n, &g.edges);
        let got = alg::reachable_set(&ctx, &a, 0).unwrap();
        let want: Vec<usize> = refr::traversal::bfs_levels(&adj, 0)
            .into_iter()
            .enumerate()
            .filter(|&(v, l)| l.is_some() && v != 0)
            .map(|(v, _)| v)
            .collect();
        // reachable_set excludes the source unless on a cycle
        let got_no_src: Vec<usize> = got.into_iter().filter(|&v| v != 0).collect();
        assert_eq!(got_no_src, want, "n={}", g.n);
    }
}

#[test]
fn closeness_matches() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let a = bool_matrix(&g);
        let adj = AdjGraph::from_edges(g.n, &g.edges);
        let got = alg::closeness_centrality(&ctx, &a, 8).unwrap();
        let want = refr::centrality::closeness_centrality(&adj);
        for (v, (x, y)) in got.iter().zip(&want).enumerate() {
            assert!((x - y).abs() < 1e-12, "vertex {v}: {x} vs {y}");
        }
    }
}

#[test]
fn k_core_matches() {
    let ctx = Context::blocking();
    for g in test_graphs() {
        let und = g.symmetrize().without_self_loops();
        let a = bool_matrix(&und);
        let adj = AdjGraph::from_edges(und.n, &und.edges);
        for k in [1u64, 2, 3] {
            let (_, members) = alg::k_core(&ctx, &a, k).unwrap();
            let want = refr::centrality::k_core_members(&adj, k as usize);
            assert_eq!(members, want, "n={} k={k}", und.n);
        }
        assert_eq!(
            alg::cores::core_numbers(&ctx, &a).unwrap(),
            refr::centrality::core_numbers(&adj)
                .into_iter()
                .map(|x| x as u64)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn mis_is_valid_on_generated_graphs() {
    let ctx = Context::blocking();
    for (k, g) in test_graphs().into_iter().enumerate() {
        let und = g.symmetrize().without_self_loops();
        let a = bool_matrix(&und);
        let mis = alg::maximal_independent_set(&ctx, &a, k as u64).unwrap();
        let in_set: std::collections::BTreeSet<usize> = mis.iter().copied().collect();
        for &(u, v) in &und.edges {
            assert!(!(in_set.contains(&u) && in_set.contains(&v)));
        }
        // maximality
        for v in 0..und.n {
            if !in_set.contains(&v) {
                let has_neighbor_in = und
                    .edges
                    .iter()
                    .any(|&(a2, b)| a2 == v && in_set.contains(&b));
                assert!(has_neighbor_in, "vertex {v} could join the set");
            }
        }
    }
}

#[test]
fn nonblocking_algorithms_agree() {
    let b = Context::blocking();
    let nb = Context::nonblocking();
    let g = erdos_renyi_gnm(25, 75, 17).without_self_loops().dedup();
    let a = bool_matrix(&g);
    assert_eq!(
        alg::bfs_levels(&b, &a, 0).unwrap(),
        alg::bfs_levels(&nb, &a, 0).unwrap()
    );
    let und = g.symmetrize().without_self_loops();
    let au = bool_matrix(&und);
    assert_eq!(
        alg::triangle_count(&b, &au).unwrap(),
        alg::triangle_count(&nb, &au).unwrap()
    );
    nb.wait().unwrap();
}
