//! End-to-end check of the environment-variable configuration layer:
//! `GRB_DELTA_RUN_CAP` and `GRB_FLUSH_WINDOW_MS` are read (and cached)
//! the first time any delta log consults them, sit *below* the
//! session-scoped `Config` overrides, and *above* the compiled-in
//! defaults.
//!
//! This file holds exactly one `#[test]`: integration-test binaries run
//! in their own process, so setting the variables before first use is
//! race-free here and cannot leak into the rest of the suite.

use graphblas_core::prelude::*;
use graphblas_core::storage::{delta, snapshot};

#[test]
fn env_vars_configure_run_cap_and_flush_window() {
    // Before ANY delta-log use in this process: both OnceLock caches
    // are still cold.
    std::env::set_var("GRB_DELTA_RUN_CAP", "5");
    std::env::set_var("GRB_FLUSH_WINDOW_MS", "0");

    // Resolution: no session override → the env value wins.
    assert_eq!(delta::run_cap(), 5);
    assert_eq!(
        snapshot::flush_window(),
        None,
        "window 0 disables the time trigger"
    );

    // The cap is live in the storage layer: eleven pending updates at
    // cap 5 seal at least two sorted runs (the compiled-in default of
    // 4096 would seal none).
    let m = Matrix::<f64>::new(8, 8).unwrap();
    for k in 0..11usize {
        m.set(k % 8, k / 8, k as f64).unwrap();
    }
    let stats = m.delta_stats();
    assert!(
        stats.run_count >= 2,
        "env cap should have sealed runs, got {stats:?}"
    );

    // Session scope beats the environment…
    delta::set_session_run_cap(Some(2));
    snapshot::set_session_flush_window_ms(Some(7));
    assert_eq!(delta::run_cap(), 2);
    assert_eq!(
        snapshot::flush_window(),
        Some(std::time::Duration::from_millis(7))
    );

    // …and clearing the session falls back to the (cached) env values,
    // not the defaults.
    delta::set_session_run_cap(None);
    snapshot::set_session_flush_window_ms(None);
    assert_eq!(delta::run_cap(), 5);
    assert_eq!(snapshot::flush_window(), None);

    // The deferred state still reads correctly through the snapshot
    // path with the tiny cap.
    let snap = m.snapshot();
    assert_eq!(snap.nvals().unwrap(), 11);
    assert_eq!(snap.get(3, 0).unwrap(), Some(3.0));
}
