//! The dynamically-typed C-style facade must agree with the typed core
//! on randomized operation sequences — the two bindings expose one
//! implementation, so any divergence is a facade bug (casting, domain
//! bookkeeping, argument dispatch).

use graphblas_capi as grb;
use graphblas_capi::{GrbBinaryOp, GrbMatrix, GrbMonoid, GrbSemiring, GrbType, Value};
use graphblas_core::prelude::*;
use proptest::prelude::*;

const N: usize = 4;

#[derive(Debug, Clone)]
enum Step {
    Mxm {
        c: usize,
        a: usize,
        b: usize,
        masked: bool,
        accum: bool,
    },
    EwiseAdd {
        c: usize,
        a: usize,
        b: usize,
    },
    EwiseMult {
        c: usize,
        a: usize,
        b: usize,
    },
    Transpose {
        c: usize,
        a: usize,
    },
    Fill {
        c: usize,
        v: i8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    let i = 0usize..3;
    prop_oneof![
        (
            i.clone(),
            i.clone(),
            i.clone(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(c, a, b, masked, accum)| Step::Mxm {
                c,
                a,
                b,
                masked,
                accum
            }),
        (i.clone(), i.clone(), i.clone()).prop_map(|(c, a, b)| Step::EwiseAdd { c, a, b }),
        (i.clone(), i.clone(), i.clone()).prop_map(|(c, a, b)| Step::EwiseMult { c, a, b }),
        (i.clone(), i.clone()).prop_map(|(c, a)| Step::Transpose { c, a }),
        (i, -3i8..4).prop_map(|(c, v)| Step::Fill { c, v }),
    ]
}

type Seeds = Vec<Vec<(usize, usize, i32)>>;

fn run_typed(seeds: &Seeds, steps: &[Step]) -> Vec<Vec<(usize, usize, i32)>> {
    let ctx = Context::blocking();
    let pool: Vec<Matrix<i32>> = seeds
        .iter()
        .map(|t| Matrix::from_tuples(N, N, t).unwrap())
        .collect();
    let d = Descriptor::default();
    for s in steps {
        match *s {
            Step::Mxm {
                c,
                a,
                b,
                masked,
                accum,
            } => {
                let desc = Descriptor::default().structural_mask();
                match (masked, accum) {
                    (false, false) => ctx.mxm(
                        &pool[c],
                        NoMask,
                        NoAccum,
                        plus_times::<i32>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (true, false) => ctx.mxm(
                        &pool[c],
                        &pool[a],
                        NoAccum,
                        plus_times::<i32>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (false, true) => ctx.mxm(
                        &pool[c],
                        NoMask,
                        Accum(Plus::<i32>::new()),
                        plus_times::<i32>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (true, true) => ctx.mxm(
                        &pool[c],
                        &pool[b],
                        Accum(Plus::<i32>::new()),
                        plus_times::<i32>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                }
                .unwrap();
            }
            Step::EwiseAdd { c, a, b } => ctx
                .ewise_add_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Plus::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
                .unwrap(),
            Step::EwiseMult { c, a, b } => ctx
                .ewise_mult_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Times::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
                .unwrap(),
            Step::Transpose { c, a } => ctx
                .transpose(&pool[c], NoMask, NoAccum, &pool[a], &d)
                .unwrap(),
            Step::Fill { c, v } => ctx
                .assign_scalar_matrix(&pool[c], NoMask, NoAccum, v as i32, ALL, ALL, &d)
                .unwrap(),
        }
    }
    pool.iter().map(|m| m.extract_tuples().unwrap()).collect()
}

fn run_capi(seeds: &Seeds, steps: &[Step]) -> Vec<Vec<(usize, usize, i32)>> {
    grb::with_session(graphblas_core::Mode::Blocking, || {
        let sr = {
            let add = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0))
                .unwrap();
            GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap()
        };
        let plus = GrbBinaryOp::plus(GrbType::Int32).unwrap();
        let times = GrbBinaryOp::times(GrbType::Int32).unwrap();
        let pool: Vec<GrbMatrix> = seeds
            .iter()
            .map(|t| {
                let m = GrbMatrix::new(GrbType::Int32, N, N).unwrap();
                let rows: Vec<usize> = t.iter().map(|x| x.0).collect();
                let cols: Vec<usize> = t.iter().map(|x| x.1).collect();
                let vals: Vec<Value> = t.iter().map(|x| Value::Int32(x.2)).collect();
                m.build(&rows, &cols, &vals, &plus).unwrap();
                m
            })
            .collect();
        let d = Descriptor::default();
        for s in steps {
            match *s {
                Step::Mxm {
                    c,
                    a,
                    b,
                    masked,
                    accum,
                } => {
                    let desc = Descriptor::default().structural_mask();
                    let mask = if masked { Some(&pool[a]) } else { None };
                    // the second masked variant uses pool[b] as mask
                    let mask = if masked && accum {
                        Some(&pool[b])
                    } else {
                        mask
                    };
                    let acc = accum.then_some(&plus);
                    grb::mxm(&pool[c], mask, acc, &sr, &pool[a], &pool[b], &desc).unwrap();
                }
                Step::EwiseAdd { c, a, b } => {
                    grb::ewise_add_matrix(&pool[c], None, None, &plus, &pool[a], &pool[b], &d)
                        .unwrap()
                }
                Step::EwiseMult { c, a, b } => {
                    grb::ewise_mult_matrix(&pool[c], None, None, &times, &pool[a], &pool[b], &d)
                        .unwrap()
                }
                Step::Transpose { c, a } => {
                    grb::transpose(&pool[c], None, None, &pool[a], &d).unwrap()
                }
                Step::Fill { c, v } => grb::assign_scalar_matrix(
                    &pool[c],
                    None,
                    None,
                    Value::Int32(v as i32),
                    ALL,
                    ALL,
                    &d,
                )
                .unwrap(),
            }
        }
        pool.iter()
            .map(|m| {
                m.extract_tuples()
                    .unwrap()
                    .into_iter()
                    .map(|(i, j, v)| match v {
                        Value::Int32(x) => (i, j, x),
                        other => panic!("non-int32 value {other:?}"),
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn facade_matches_typed_core(
        seeds in proptest::collection::vec(
            proptest::collection::vec((0..N, 0..N, -3i32..4), 0..8).prop_map(|mut t| {
                t.sort_by_key(|&(i, j, _)| (i, j));
                t.dedup_by_key(|&mut (i, j, _)| (i, j));
                t
            }),
            3,
        ),
        steps in proptest::collection::vec(step(), 1..10),
    ) {
        prop_assert_eq!(run_typed(&seeds, &steps), run_capi(&seeds, &steps));
    }
}
