//! Experiment T1 (DESIGN.md): Table I — the five semirings the paper
//! tabulates, validated end to end through `mxm`/`mxv` on the same
//! graph, plus the semiring laws (identity, annihilator) at the
//! operation level.

use graphblas_core::algebra::set::{SetIntersect, SetUnionMonoid};
use graphblas_core::prelude::*;

/// A fixed weighted digraph used throughout:
/// 0→1 (2), 0→2 (5), 1→3 (4), 2→3 (1), 3→0 (3)
fn weights() -> Vec<(usize, usize, f64)> {
    vec![
        (0, 1, 2.0),
        (0, 2, 5.0),
        (1, 3, 4.0),
        (2, 3, 1.0),
        (3, 0, 3.0),
    ]
}

fn square<S: Semiring<f64, f64, f64>>(s: S) -> Matrix<f64> {
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(4, 4, &weights()).unwrap();
    let c = Matrix::<f64>::new(4, 4).unwrap();
    ctx.mxm(&c, NoMask, NoAccum, s, &a, &a, &Descriptor::default())
        .unwrap();
    c
}

#[test]
fn row1_standard_arithmetic() {
    let c = square(plus_times::<f64>());
    // 0→3 via 1: 2*4 = 8; via 2: 5*1 = 5; ⊕ = + gives 13
    assert_eq!(c.get(0, 3).unwrap(), Some(13.0));
    // 3→1 via 0: 3*2 = 6
    assert_eq!(c.get(3, 1).unwrap(), Some(6.0));
    // no two-hop 0→1 (only direct): undefined, never a fabricated 0
    assert_eq!(c.get(0, 1).unwrap(), None);
}

#[test]
fn row2_max_plus() {
    let c = square(max_plus::<f64>());
    // longest two-hop 0→3: max(2+4, 5+1) = 6
    assert_eq!(c.get(0, 3).unwrap(), Some(6.0));
}

#[test]
fn row2_max_plus_identity_is_neg_infinity() {
    let s = max_plus::<f64>();
    assert_eq!(s.zero(), f64::NEG_INFINITY);
    // 0 annihilates ⊗: -∞ + x = -∞; and is the ⊕ identity
    assert_eq!(s.mul().apply(&s.zero(), &7.0), f64::NEG_INFINITY);
    assert_eq!(s.add().apply(&s.zero(), &7.0), 7.0);
}

#[test]
fn row3_min_max() {
    let c = square(min_max::<f64>());
    // minimax two-hop 0→3: min(max(2,4), max(5,1)) = min(4, 5) = 4
    assert_eq!(c.get(0, 3).unwrap(), Some(4.0));
    let s = min_max::<f64>();
    assert_eq!(s.zero(), f64::INFINITY);
    assert_eq!(s.mul().apply(&s.zero(), &7.0), f64::INFINITY);
}

#[test]
fn row4_gf2() {
    let ctx = Context::blocking();
    let b = Matrix::from_tuples(
        4,
        4,
        &weights()
            .iter()
            .map(|&(i, j, _)| (i, j, true))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let p = Matrix::<bool>::new(4, 4).unwrap();
    ctx.mxm(
        &p,
        NoMask,
        NoAccum,
        xor_and(),
        &b,
        &b,
        &Descriptor::default(),
    )
    .unwrap();
    // two walks 0→3 (via 1 and via 2): even parity
    assert_eq!(p.get(0, 3).unwrap(), Some(false));
    // exactly one walk 3→1 (via 0): odd
    assert_eq!(p.get(3, 1).unwrap(), Some(true));
}

#[test]
fn row5_power_set() {
    let ctx = Context::blocking();
    let color = |cs: &[u32]| SmallSet::from_iter_unsorted(cs.iter().copied());
    let s = Matrix::from_tuples(
        4,
        4,
        &[
            (0, 1, color(&[1, 2])),
            (0, 2, color(&[2, 3])),
            (1, 3, color(&[1])),
            (2, 3, color(&[2, 3])),
        ],
    )
    .unwrap();
    let t = Matrix::<SmallSet>::new(4, 4).unwrap();
    ctx.mxm(
        &t,
        NoMask,
        NoAccum,
        SemiringDef::new(SetUnionMonoid, SetIntersect),
        &s,
        &s,
        &Descriptor::default(),
    )
    .unwrap();
    // 0→3: (via 1) {1,2}∩{1} = {1}; (via 2) {2,3}∩{2,3} = {2,3};
    // ∪ = {1,2,3}
    assert_eq!(t.get(0, 3).unwrap(), Some(color(&[1, 2, 3])));
    // a route whose intersection is empty contributes the semiring 0 (∅)
    // and an all-∅ entry is still *stored* (∅ is a value, not absence)
    let disjoint = Matrix::from_tuples(2, 2, &[(0, 1, color(&[1])), (1, 0, color(&[2]))]).unwrap();
    let u = Matrix::<SmallSet>::new(2, 2).unwrap();
    ctx.mxm(
        &u,
        NoMask,
        NoAccum,
        SemiringDef::new(SetUnionMonoid, SetIntersect),
        &disjoint,
        &disjoint,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(u.get(0, 0).unwrap(), Some(SmallSet::empty()));
}

#[test]
fn same_matrix_different_semirings_no_restorage() {
    // §II: "nothing changes in the stored matrix" as the semiring
    // changes — one matrix, four interpretations
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(4, 4, &weights()).unwrap();
    let before = a.extract_tuples().unwrap();
    for _ in 0..2 {
        let c = Matrix::<f64>::new(4, 4).unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<f64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            min_plus::<f64>(),
            &a,
            &a,
            &Descriptor::default().replace(),
        )
        .unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            max_plus::<f64>(),
            &a,
            &a,
            &Descriptor::default().replace(),
        )
        .unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            min_max::<f64>(),
            &a,
            &a,
            &Descriptor::default().replace(),
        )
        .unwrap();
    }
    assert_eq!(a.extract_tuples().unwrap(), before);
}

#[test]
fn min_plus_vs_reference_shortest_paths() {
    // tropical mxv iteration against the Bellman-Ford oracle on a
    // generated graph
    use graphblas_reference::{paths::bellman_ford, WeightedGraph};
    let g = graphblas_gen::erdos_renyi_gnm(60, 240, 5);
    let wt = g.weighted_tuples(1.0, 4.0, 11);
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(60, 60, &wt).unwrap();
    let dist = graphblas_algorithms::sssp_bellman_ford(&ctx, &a, 0).unwrap();
    let oracle = bellman_ford(&WeightedGraph::from_edges(60, &wt), 0).unwrap();
    for (d, o) in dist.iter().zip(&oracle) {
        match (d, o) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            other => panic!("disagreement: {other:?}"),
        }
    }
}
