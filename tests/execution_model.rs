//! Experiment E1 (DESIGN.md), paper §IV: the execution model.
//!
//! Sequences, deferral, completion forcing, program order under
//! deferral, object snapshots, lazy dead-code elimination, and the
//! "nonblocking with wait after every call ≡ blocking" equivalence.

use graphblas_core::prelude::*;

fn ring(n: usize) -> Matrix<i64> {
    let t: Vec<(usize, usize, i64)> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();
    Matrix::from_tuples(n, n, &t).unwrap()
}

#[test]
fn blocking_mode_completes_each_method() {
    let ctx = Context::blocking();
    let a = ring(8);
    let c = Matrix::<i64>::new(8, 8).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(c.is_complete());
    assert_eq!(ctx.pending_ops(), 0);
}

#[test]
fn nonblocking_defers_and_wait_terminates_the_sequence() {
    let ctx = Context::nonblocking();
    let a = ring(8);
    let c = Matrix::<i64>::new(8, 8).unwrap();
    let d = Matrix::<i64>::new(8, 8).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.mxm(
        &d,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &c,
        &c,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(!c.is_complete());
    assert!(!d.is_complete());
    assert_eq!(ctx.pending_ops(), 2);
    ctx.wait().unwrap();
    assert!(c.is_complete() && d.is_complete());
    assert_eq!(ctx.pending_ops(), 0);
    // ring^4: each vertex reaches the vertex 4 ahead
    assert_eq!(d.get(0, 4).unwrap(), Some(1));
}

#[test]
fn exporting_methods_force_completion() {
    let ctx = Context::nonblocking();
    let a = ring(6);
    let c = Matrix::<i64>::new(6, 6).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(!c.is_complete());
    // each of these reads values into non-opaque data (§IV):
    assert_eq!(c.nvals().unwrap(), 6);
    assert!(c.is_complete());

    let d = Matrix::<i64>::new(6, 6).unwrap();
    ctx.mxm(
        &d,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(d.get(0, 2).unwrap(), Some(1));
    assert!(d.is_complete());

    let e = Matrix::<i64>::new(6, 6).unwrap();
    ctx.mxm(
        &e,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    let _ = e.extract_tuples().unwrap();
    assert!(e.is_complete());
}

#[test]
fn program_order_is_preserved_under_deferral() {
    // mutate an input *after* submitting a deferred op: the op must see
    // the value at call time (method inputs are snapshots)
    let ctx = Context::nonblocking();
    let a = Matrix::from_tuples(2, 2, &[(0, 0, 10i64)]).unwrap();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.apply_matrix(
        &c,
        NoMask,
        NoAccum,
        Identity::new(),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    a.set(0, 0, 999).unwrap(); // later program-order mutation
    a.set(1, 1, 5).unwrap();
    ctx.wait().unwrap();
    assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 10)]);
}

#[test]
fn chained_updates_to_one_object_apply_in_order() {
    let ctx = Context::nonblocking();
    let a = ring(4);
    let c = Matrix::<i64>::new(4, 4).unwrap();
    // c = A; c += A (accum); c += A again
    ctx.apply_matrix(
        &c,
        NoMask,
        NoAccum,
        Identity::new(),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.apply_matrix(
        &c,
        NoMask,
        Accum(Plus::<i64>::new()),
        Identity::new(),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.apply_matrix(
        &c,
        NoMask,
        Accum(Plus::<i64>::new()),
        Identity::new(),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.wait().unwrap();
    assert_eq!(c.get(0, 1).unwrap(), Some(3));
}

#[test]
fn dead_intermediates_are_elided() {
    // an unobserved, dropped intermediate is never computed — the §IV
    // "lazy evaluation" latitude (observable through a fault that never
    // fires)
    let ctx = Context::nonblocking();
    let a = ring(4);
    {
        let dead = Matrix::<i64>::new(4, 4).unwrap();
        ctx.inject_fault(Error::Panic("should never run".into()));
        ctx.mxm(
            &dead,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
    }
    // the dead op's fault must not surface: it was never executed
    ctx.wait().unwrap();
    assert_eq!(ctx.error(), None);
}

#[test]
fn overwrite_chains_drop_dead_history() {
    // an unmasked, unaccumulated write does not depend on the output's
    // old value, so repeatedly overwriting one handle leaves no history
    // chain: only the final write runs (observable via faults on the
    // earlier ones)
    let ctx = Context::nonblocking();
    let a = ring(4);
    let out = Matrix::<i64>::new(4, 4).unwrap();
    for _ in 0..3 {
        ctx.inject_fault(Error::Panic("dead overwrite".into()));
        ctx.mxm(
            &out,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default().replace(),
        )
        .unwrap();
    }
    ctx.mxm(
        &out,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    // only the live final write runs; the three faulted ones are dead
    ctx.wait().unwrap();
    assert_eq!(out.get(0, 2).unwrap(), Some(1));
}

#[test]
fn accumulating_overwrites_keep_history_alive() {
    // with an accumulator the old value IS consumed — history must run
    let ctx = Context::nonblocking();
    let a = ring(4);
    let out = Matrix::<i64>::new(4, 4).unwrap();
    ctx.inject_fault(Error::Panic("needed by accum".into()));
    ctx.mxm(
        &out,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.mxm(
        &out,
        NoMask,
        Accum(Plus::<i64>::new()),
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(ctx.wait().is_err());
}

#[test]
fn live_consumers_keep_intermediates_alive() {
    // same shape as above, but the intermediate feeds a live output:
    // now it must run (and here, fail) even though its own handle is
    // dropped
    let ctx = Context::nonblocking();
    let a = ring(4);
    let out = Matrix::<i64>::new(4, 4).unwrap();
    {
        let mid = Matrix::<i64>::new(4, 4).unwrap();
        ctx.inject_fault(Error::Panic("must run".into()));
        ctx.mxm(
            &mid,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        ctx.mxm(
            &out,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &mid,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
    }
    assert!(ctx.wait().is_err());
    assert!(matches!(out.nvals(), Err(Error::InvalidObject(_))));
}

#[test]
fn wait_after_every_call_equals_blocking() {
    // §IV: "a sequence in nonblocking mode where every GraphBLAS
    // operation is followed by a call to GrB_wait() is equivalent to the
    // same sequence in blocking mode"
    let run = |ctx: &Context, wait_each: bool| {
        let a = ring(8);
        let c = Matrix::<i64>::new(8, 8).unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        if wait_each {
            ctx.wait().unwrap();
        }
        ctx.ewise_add_matrix(
            &c,
            NoMask,
            NoAccum,
            Plus::new(),
            &c,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        if wait_each {
            ctx.wait().unwrap();
        }
        ctx.wait().unwrap();
        c.extract_tuples().unwrap()
    };
    let blocking = run(&Context::blocking(), false);
    let nb_waits = run(&Context::nonblocking(), true);
    let nb_lazy = run(&Context::nonblocking(), false);
    assert_eq!(blocking, nb_waits);
    assert_eq!(blocking, nb_lazy);
}

#[test]
fn deep_deferred_chains_complete_iteratively() {
    // a BFS-like loop on a path graph defers a chain as long as the
    // diameter; the forcing engine must not recurse (stack safety)
    let n = 3000;
    let t: Vec<(usize, usize, i64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
    let a = Matrix::from_tuples(n, n, &t).unwrap();
    let ctx = Context::nonblocking();
    let frontier = Vector::from_tuples(n, &[(0usize, 1i64)]).unwrap();
    for _ in 0..n - 1 {
        ctx.vxm(
            &frontier,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &frontier,
            &a,
            &Descriptor::default().replace(),
        )
        .unwrap();
    }
    // one forced observation of a ~3000-deep chain
    assert_eq!(frontier.extract_tuples().unwrap(), vec![(n - 1, 1)]);
}

#[test]
fn snapshots_make_in_place_updates_well_defined() {
    // c = c +.* c with c as all three arguments — the snapshot design
    // gives the mathematically expected result
    let ctx = Context::nonblocking();
    let c = Matrix::from_tuples(2, 2, &[(0, 1, 1i64), (1, 0, 1)]).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &c,
        &c,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.wait().unwrap();
    assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 1), (1, 1, 1)]);
}
