//! PR acceptance property for runtime-defined algebra (`algebra::udf` +
//! the capi registration surface): a user-defined wrapped-`i64` domain
//! with a registered PLUS_TIMES semiring — whose closures perform
//! exactly the built-in `GrB_INT64` arithmetic over raw bytes — observes
//! **bitwise** identical results to the built-in `GrB_INT64` semiring on
//! the same program, across execution modes, storage formats (including
//! 2D-tiled), and intra-kernel parallelism degrees. The built-in lane is
//! monomorphized; the UDT lane is the erased `Value::Udf` instantiation:
//! this property pins that the two lanes compute the same algebra.

use std::sync::OnceLock;

use graphblas_capi::{
    grb_binary_op_new, grb_monoid_new, grb_semiring_new, grb_type_new, grb_unary_op_new,
    operations as ops, with_session_policies, Descriptor, Format, GrbBinaryOp, GrbMatrix,
    GrbMonoid, GrbSemiring, GrbType, GrbTypeHandle, GrbUnaryOp, Mode, SchedPolicy, Value,
};
use graphblas_core::par;
use graphblas_core::FusePolicy;
use proptest::prelude::*;

const N: usize = 10;
const DEGREES: [usize; 3] = [1, 2, 8];

/// Decode a strategy byte into an i64 payload with sign and magnitude
/// spread (wrapping arithmetic is exercised by the products).
fn ival(code: u8) -> i64 {
    (i64::from(code) - 128).wrapping_mul(0x0123_4567_89ab)
}

type Tuples = Vec<(usize, usize, u8)>;

fn sparse(max_nnz: usize) -> impl Strategy<Value = Tuples> {
    proptest::collection::vec((0..N, 0..N, 0u8..255), 0..=max_nnz).prop_map(|mut t| {
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        t
    })
}

/// The registered wrapped-i64 domain (one registration per process; the
/// registry is global and nominal).
fn udt() -> GrbTypeHandle {
    static T: OnceLock<GrbTypeHandle> = OnceLock::new();
    *T.get_or_init(|| grb_type_new("prop_wrapped_i64", 8).unwrap())
}

struct UdtAlgebra {
    sr: GrbSemiring,
    add: GrbMonoid,
    plus: GrbBinaryOp,
    times: GrbBinaryOp,
    neg: GrbUnaryOp,
}

/// The registered algebra mirroring GrB_{PLUS,TIMES,AINV}_INT64 over
/// raw bytes (built once: operator names intern for the process
/// lifetime, so constructors must not run per proptest case).
fn udt_algebra() -> &'static UdtAlgebra {
    static A: OnceLock<UdtAlgebra> = OnceLock::new();
    A.get_or_init(|| {
        let t = udt().ty();
        let dec = |b: &[u8]| i64::from_ne_bytes(b.try_into().unwrap());
        let plus = grb_binary_op_new("prop_plus_i64", t, t, t, move |z, x, y| {
            z.copy_from_slice(&dec(x).wrapping_add(dec(y)).to_ne_bytes());
        });
        let times = grb_binary_op_new("prop_times_i64", t, t, t, move |z, x, y| {
            z.copy_from_slice(&dec(x).wrapping_mul(dec(y)).to_ne_bytes());
        });
        let neg = grb_unary_op_new("prop_neg_i64", t, t, move |z, x| {
            z.copy_from_slice(&dec(x).wrapping_neg().to_ne_bytes());
        });
        let add = grb_monoid_new(&plus, &0i64.to_ne_bytes()).unwrap();
        let sr = grb_semiring_new(add.clone(), times.clone()).unwrap();
        UdtAlgebra {
            sr,
            add,
            plus,
            times,
            neg,
        }
    })
}

struct BuiltinAlgebra {
    sr: GrbSemiring,
    add: GrbMonoid,
    plus: GrbBinaryOp,
    times: GrbBinaryOp,
    neg: GrbUnaryOp,
}

fn builtin_algebra() -> BuiltinAlgebra {
    let plus = GrbBinaryOp::plus(GrbType::Int64).unwrap();
    let times = GrbBinaryOp::times(GrbType::Int64).unwrap();
    let neg = GrbUnaryOp::ainv(GrbType::Int64).unwrap();
    let add = GrbMonoid::new(plus.clone(), Value::Int64(0)).unwrap();
    let sr = GrbSemiring::new(add.clone(), times.clone()).unwrap();
    BuiltinAlgebra {
        sr,
        add,
        plus,
        times,
        neg,
    }
}

/// Everything the program observes, decoded to i64 (bit-identical by
/// construction of the decoding: both lanes store 8 little/native-endian
/// bytes per entry).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Obs {
    vecs: Vec<Vec<(usize, i64)>>,
    mats: Vec<Vec<(usize, usize, i64)>>,
    scalars: Vec<i64>,
}

fn decode(v: &Value) -> i64 {
    match v {
        Value::Int64(x) => *x,
        Value::Udf(u) => i64::from_ne_bytes(u.bytes().try_into().unwrap()),
        v => panic!("unexpected domain in equivalence program: {v:?}"),
    }
}

fn vec_obs(w: &graphblas_capi::GrbVector) -> Vec<(usize, i64)> {
    w.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, decode(&v)))
        .collect()
}

fn mat_obs(m: &GrbMatrix) -> Vec<(usize, usize, i64)> {
    m.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, j, v)| (i, j, decode(&v)))
        .collect()
}

/// Run the fixed program over domain `ty`, encoding payloads with
/// `enc`, using the algebra pieces passed in. Must run inside a live
/// session.
#[allow(clippy::too_many_arguments)]
fn interpret(
    ty: GrbType,
    enc: &dyn Fn(i64) -> Value,
    sr: &GrbSemiring,
    add: &GrbMonoid,
    plus: &GrbBinaryOp,
    times: &GrbBinaryOp,
    neg: &GrbUnaryOp,
    m0: &Tuples,
    u0: &Tuples,
    format: Option<Format>,
) -> Obs {
    let d = Descriptor::default();
    let a = GrbMatrix::new(ty, N, N).unwrap();
    for &(i, j, c) in m0 {
        a.set(i, j, enc(ival(c))).unwrap();
    }
    if let Some(f) = format {
        a.set_format(f).unwrap();
    }
    let u = graphblas_capi::GrbVector::new(ty, N).unwrap();
    for &(i, _, c) in u0 {
        u.set(i, enc(ival(c))).unwrap();
    }

    let mut obs = Obs {
        vecs: Vec::new(),
        mats: Vec::new(),
        scalars: Vec::new(),
    };

    // w = A ⊕.⊗ u ; w2 = u ⊕.⊗ A
    let w = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::mxv(&w, None, None, sr, &a, &u, &d).unwrap();
    let w2 = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::vxm(&w2, None, None, sr, &u, &a, &d).unwrap();

    // eWise add and mult over the two products
    let s = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::ewise_add_vector(&s, None, None, plus, &w, &w2, &d).unwrap();
    let p = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::ewise_mult_vector(&p, None, None, times, &w, &w2, &d).unwrap();

    // unary apply through the registered/unregistered op, with accum
    let q = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::apply_vector(&q, None, None, neg, &s, &d).unwrap();
    ops::apply_vector(&q, None, Some(plus), neg, &p, &d).unwrap();

    // C = A ⊕.⊗ A, then a row reduction and a full reduction
    let c = GrbMatrix::new(ty, N, N).unwrap();
    ops::mxm(&c, None, None, sr, &a, &a, &d).unwrap();
    let r = graphblas_capi::GrbVector::new(ty, N).unwrap();
    ops::reduce_rows(&r, None, None, add, &c, &d).unwrap();

    obs.scalars
        .push(decode(&ops::reduce_vector_scalar(add, &s).unwrap()));
    obs.scalars
        .push(decode(&ops::reduce_matrix_scalar(add, &c).unwrap()));
    for v in [&w, &w2, &s, &p, &q, &r] {
        obs.vecs.push(vec_obs(v));
    }
    obs.mats.push(mat_obs(&a));
    obs.mats.push(mat_obs(&c));
    obs
}

fn run_udt(m0: &Tuples, u0: &Tuples, format: Option<Format>) -> Obs {
    let t = udt();
    let alg = udt_algebra();
    let enc = move |v: i64| t.value(&v.to_ne_bytes()).unwrap();
    interpret(
        t.ty(),
        &enc,
        &alg.sr,
        &alg.add,
        &alg.plus,
        &alg.times,
        &alg.neg,
        m0,
        u0,
        format,
    )
}

fn run_builtin(m0: &Tuples, u0: &Tuples, format: Option<Format>) -> Obs {
    let alg = builtin_algebra();
    interpret(
        GrbType::Int64,
        &Value::Int64,
        &alg.sr,
        &alg.add,
        &alg.plus,
        &alg.times,
        &alg.neg,
        m0,
        u0,
        format,
    )
}

/// Pin the intra-kernel degree and force the cost model so even
/// proptest-sized fixtures chunk.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

const FORMATS: [Option<Format>; 4] = [
    None,
    Some(Format::Csr),
    Some(Format::Bitmap),
    Some(Format::Tiled),
];

const SESSIONS: [(Mode, SchedPolicy); 3] = [
    (Mode::Blocking, SchedPolicy::Sequential),
    (Mode::Nonblocking, SchedPolicy::Sequential),
    (Mode::Nonblocking, SchedPolicy::Parallel),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: the registered UDT semiring and the
    /// built-in INT64 semiring observe identical results on every
    /// (mode, policy, format, degree) combination — and every one of
    /// those equals the serial blocking built-in reference.
    #[test]
    fn udt_semiring_equals_builtin_bitwise(
        m0 in sparse(40),
        u0 in sparse(12),
    ) {
        let reference = with_session_policies(
            Mode::Blocking, SchedPolicy::Sequential, FusePolicy::On,
            || at_degree(1, || run_builtin(&m0, &u0, None)),
        ).unwrap();

        for (mode, policy) in SESSIONS {
            for format in FORMATS {
                for k in DEGREES {
                    let (b, udt_obs) = with_session_policies(mode, policy, FusePolicy::On, || {
                        at_degree(k, || {
                            (run_builtin(&m0, &u0, format), run_udt(&m0, &u0, format))
                        })
                    }).unwrap();
                    prop_assert_eq!(
                        &reference, &b,
                        "builtin drifted: mode {:?} policy {:?} format {:?} degree {}",
                        mode, policy, format, k
                    );
                    prop_assert_eq!(
                        &reference, &udt_obs,
                        "udt lane drifted: mode {:?} policy {:?} format {:?} degree {}",
                        mode, policy, format, k
                    );
                }
            }
        }
    }
}
