//! Experiment E2 (DESIGN.md), paper §V: the error model.
//!
//! * API errors are detected eagerly in *both* modes, before any
//!   computation, leaving arguments untouched.
//! * Execution errors in blocking mode return from the method itself.
//! * Execution errors in nonblocking mode surface at `wait()` or at any
//!   completion-forcing method; the defining object becomes invalid and
//!   poisons consumers with `GrB_INVALID_OBJECT`.
//! * `GrB_error()` returns detail text for the most recent error.

use graphblas_core::prelude::*;

fn small() -> Matrix<i64> {
    Matrix::from_tuples(2, 2, &[(0, 0, 2), (1, 1, 3)]).unwrap()
}

#[test]
fn api_errors_are_eager_in_nonblocking_mode() {
    let ctx = Context::nonblocking();
    let a = small();
    let bad_out = Matrix::<i64>::new(3, 3).unwrap();
    // dimension mismatch must be reported from the call, not from wait()
    let e = ctx
        .mxm(
            &bad_out,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
    assert!(e.is_api_error());
    assert!(matches!(e, Error::DimensionMismatch(_)));
    // the sequence holds nothing; output untouched and still valid
    assert_eq!(ctx.pending_ops(), 0);
    assert_eq!(bad_out.nvals().unwrap(), 0);
    ctx.wait().unwrap();
}

#[test]
fn api_errors_leave_arguments_untouched() {
    let ctx = Context::blocking();
    let a = small();
    let c = Matrix::from_tuples(2, 2, &[(0, 1, 42)]).unwrap();
    let wrong_mask = Matrix::<bool>::new(3, 3).unwrap();
    let e = ctx
        .mxm(
            &c,
            &wrong_mask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
    assert!(e.is_api_error());
    assert_eq!(c.extract_tuples().unwrap(), vec![(0, 1, 42)]);
}

#[test]
fn blocking_execution_error_returns_from_the_call() {
    let ctx = Context::blocking();
    let a = small();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::OutOfMemory("simulated".into()));
    let e = ctx
        .mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap_err();
    assert!(e.is_execution_error());
    assert!(ctx.error().unwrap().contains("simulated"));
}

#[test]
fn nonblocking_execution_error_surfaces_at_wait() {
    let ctx = Context::nonblocking();
    let a = small();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::Panic("deferred boom".into()));
    // the call succeeds: only argument checks ran (§V)
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    let e = ctx.wait().unwrap_err();
    assert!(e.is_execution_error());
    assert!(ctx.error().unwrap().contains("deferred boom"));
}

#[test]
fn nonblocking_execution_error_surfaces_at_forcing_method() {
    let ctx = Context::nonblocking();
    let a = small();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::OutOfMemory("forced out".into()));
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    // nvals() copies into non-opaque data: it must complete the object
    // and report the failure
    let e = c.nvals().unwrap_err();
    assert!(e.is_execution_error());
}

#[test]
fn invalid_objects_poison_consumers() {
    let ctx = Context::nonblocking();
    let a = small();
    let broken = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::Panic("root cause".into()));
    ctx.mxm(
        &broken,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    // a second operation consumes the (to-be-)invalid object
    let downstream = Matrix::<i64>::new(2, 2).unwrap();
    ctx.mxm(
        &downstream,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &broken,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    let _ = ctx.wait().unwrap_err();
    // the downstream output reports INVALID_OBJECT (Figure 2's return
    // value for arguments invalidated by previous execution errors)
    let e = downstream.nvals().unwrap_err();
    assert!(matches!(e, Error::InvalidObject(_)), "{e}");
}

#[test]
fn clear_revalidates_an_invalid_object() {
    let ctx = Context::nonblocking();
    let a = small();
    let m = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::Panic("x".into()));
    ctx.mxm(
        &m,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    let _ = ctx.wait().unwrap_err();
    assert!(m.nvals().is_err());
    m.clear(); // a fresh value node replaces the failed one
    assert_eq!(m.nvals().unwrap(), 0);
    // and the object is usable again
    ctx.mxm(
        &m,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.wait().unwrap();
    assert_eq!(m.nvals().unwrap(), 2);
}

#[test]
fn checked_operator_overflow_is_an_execution_error() {
    use graphblas_core::algebra::binary::CheckedPlus;
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(1, 1, &[(0, 0, i8::MAX)]).unwrap();
    let b = Matrix::from_tuples(1, 1, &[(0, 0, 1i8)]).unwrap();
    let c = Matrix::<i8>::new(1, 1).unwrap();
    let e = ctx
        .ewise_add_matrix(
            &c,
            NoMask,
            NoAccum,
            CheckedPlus::<i8>::new(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap_err();
    assert!(matches!(e, Error::Arithmetic(_)));
    assert!(ctx.error().unwrap().contains("overflow"));
}

#[test]
fn error_classes_match_figure2_return_values() {
    // Figure 2 names these return codes for GrB_mxm; all are expressible
    for (e, api) in [
        (Error::Panic("x".into()), false),
        (Error::InvalidObject("x".into()), false),
        (Error::OutOfMemory("x".into()), false),
        (Error::UninitializedObject("x".into()), true),
        (Error::NullPointer, true),
        (Error::DimensionMismatch("x".into()), true),
        (Error::DomainMismatch("x".into()), true),
    ] {
        assert_eq!(e.is_api_error(), api, "{e}");
        assert!(e.code_name().starts_with("GrB_"));
    }
}

#[test]
fn sequence_recovers_after_error() {
    // §V: a new sequence can begin after the failed one terminates
    let ctx = Context::nonblocking();
    let a = small();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.inject_fault(Error::Panic("first sequence".into()));
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(ctx.wait().is_err());
    // new sequence, healthy ops
    let d = Matrix::<i64>::new(2, 2).unwrap();
    ctx.mxm(
        &d,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    ctx.wait().unwrap();
    assert_eq!(d.get(0, 0).unwrap(), Some(4));
}
