//! Experiment E1 (DESIGN.md), paper §IV: "the results from blocking and
//! nonblocking modes should be identical". Random sequences of
//! GraphBLAS method calls are interpreted twice — once per mode — and
//! every observable object must agree. Integer arithmetic keeps
//! equality exact (no round-off caveat needed).

use graphblas_core::prelude::*;
use proptest::prelude::*;

/// One step of a random method sequence over a pool of 3 square
/// matrices.
#[derive(Debug, Clone)]
enum Step {
    Mxm {
        c: usize,
        a: usize,
        b: usize,
        masked: bool,
        accum: bool,
        tran: bool,
        replace: bool,
    },
    EwiseAdd {
        c: usize,
        a: usize,
        b: usize,
    },
    EwiseMult {
        c: usize,
        a: usize,
        b: usize,
        masked: bool,
    },
    Apply {
        c: usize,
        a: usize,
        negate: bool,
    },
    Transpose {
        c: usize,
        a: usize,
    },
    AssignScalar {
        c: usize,
        v: i64,
    },
    Clear {
        c: usize,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let idx = 0usize..3;
    prop_oneof![
        (
            idx.clone(),
            idx.clone(),
            idx.clone(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(c, a, b, masked, accum, tran, replace)| Step::Mxm {
                c,
                a,
                b,
                masked,
                accum,
                tran,
                replace
            }),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(c, a, b)| Step::EwiseAdd { c, a, b }),
        (idx.clone(), idx.clone(), idx.clone(), any::<bool>())
            .prop_map(|(c, a, b, masked)| Step::EwiseMult { c, a, b, masked }),
        (idx.clone(), idx.clone(), any::<bool>()).prop_map(|(c, a, negate)| Step::Apply {
            c,
            a,
            negate
        }),
        (idx.clone(), idx.clone()).prop_map(|(c, a)| Step::Transpose { c, a }),
        (idx.clone(), -5i64..5).prop_map(|(c, v)| Step::AssignScalar { c, v }),
        idx.prop_map(|c| Step::Clear { c }),
    ]
}

const N: usize = 5;

/// Per-pool-object storage hint: `Some(f)` pins the object to format
/// `f` ([`Matrix::set_format`]), `None` leaves the default Auto policy.
fn formats_strategy() -> impl Strategy<Value = Vec<Option<Format>>> {
    proptest::collection::vec(
        prop_oneof![
            Just(None),
            Just(Some(Format::Csr)),
            Just(Some(Format::Csc)),
            Just(Some(Format::Bitmap)),
            Just(Some(Format::Hyper)),
        ],
        3,
    )
}

fn interpret(
    ctx: &Context,
    seeds: &[Vec<(usize, usize, i64)>],
    steps: &[Step],
) -> Vec<Vec<(usize, usize, i64)>> {
    interpret_with_formats(ctx, seeds, steps, &[None, None, None])
}

fn interpret_with_formats(
    ctx: &Context,
    seeds: &[Vec<(usize, usize, i64)>],
    steps: &[Step],
    formats: &[Option<Format>],
) -> Vec<Vec<(usize, usize, i64)>> {
    let pool: Vec<Matrix<i64>> = seeds
        .iter()
        .map(|t| Matrix::from_tuples(N, N, t).unwrap())
        .collect();
    for (m, f) in pool.iter().zip(formats) {
        match f {
            Some(f) => m.set_format(*f).unwrap(),
            None => m.set_format_policy(FormatPolicy::Auto),
        }
    }
    let d = Descriptor::default();
    for s in steps {
        match *s {
            Step::Mxm {
                c,
                a,
                b,
                masked,
                accum,
                tran,
                replace,
            } => {
                let mut desc = Descriptor::default().structural_mask();
                if tran {
                    desc = desc.transpose_first();
                }
                if replace {
                    desc = desc.replace();
                }
                // mask and output may alias inputs: snapshots keep it
                // well defined
                match (masked, accum) {
                    (false, false) => ctx.mxm(
                        &pool[c],
                        NoMask,
                        NoAccum,
                        plus_times::<i64>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (true, false) => ctx.mxm(
                        &pool[c],
                        &pool[a],
                        NoAccum,
                        plus_times::<i64>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (false, true) => ctx.mxm(
                        &pool[c],
                        NoMask,
                        Accum(Plus::<i64>::new()),
                        plus_times::<i64>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                    (true, true) => ctx.mxm(
                        &pool[c],
                        &pool[b],
                        Accum(Plus::<i64>::new()),
                        plus_times::<i64>(),
                        &pool[a],
                        &pool[b],
                        &desc,
                    ),
                }
                .unwrap();
            }
            Step::EwiseAdd { c, a, b } => {
                ctx.ewise_add_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Plus::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
                .unwrap();
            }
            Step::EwiseMult { c, a, b, masked } => {
                if masked {
                    ctx.ewise_mult_matrix(
                        &pool[c],
                        &pool[b],
                        NoAccum,
                        Times::new(),
                        &pool[a],
                        &pool[b],
                        &Descriptor::default().structural_mask(),
                    )
                    .unwrap();
                } else {
                    ctx.ewise_mult_matrix(
                        &pool[c],
                        NoMask,
                        NoAccum,
                        Times::new(),
                        &pool[a],
                        &pool[b],
                        &d,
                    )
                    .unwrap();
                }
            }
            Step::Apply { c, a, negate } => {
                if negate {
                    ctx.apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d)
                        .unwrap();
                } else {
                    ctx.apply_matrix(&pool[c], NoMask, NoAccum, Identity::new(), &pool[a], &d)
                        .unwrap();
                }
            }
            Step::Transpose { c, a } => {
                ctx.transpose(&pool[c], NoMask, NoAccum, &pool[a], &d)
                    .unwrap();
            }
            Step::AssignScalar { c, v } => {
                ctx.assign_scalar_matrix(&pool[c], NoMask, NoAccum, v, ALL, ALL, &d)
                    .unwrap();
            }
            Step::Clear { c } => pool[c].clear(),
        }
    }
    ctx.wait().unwrap();
    pool.iter().map(|m| m.extract_tuples().unwrap()).collect()
}

fn seeds_strategy() -> impl Strategy<Value = Vec<Vec<(usize, usize, i64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..N, 0..N, -4i64..4), 0..10).prop_map(|mut t| {
            t.sort_by_key(|&(i, j, _)| (i, j));
            t.dedup_by_key(|&mut (i, j, _)| (i, j));
            t
        }),
        3,
    )
}

/// One step, returning the call's result instead of unwrapping — the
/// fault-injecting properties need ops to be able to fail (blocking
/// mode reports an injected fault from the call itself).
fn run_step(ctx: &Context, pool: &[Matrix<i64>], s: &Step) -> Result<()> {
    let d = Descriptor::default();
    match *s {
        Step::Mxm {
            c,
            a,
            b,
            masked,
            accum,
            tran,
            replace,
        } => {
            let mut desc = Descriptor::default().structural_mask();
            if tran {
                desc = desc.transpose_first();
            }
            if replace {
                desc = desc.replace();
            }
            match (masked, accum) {
                (false, false) => ctx.mxm(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    plus_times::<i64>(),
                    &pool[a],
                    &pool[b],
                    &desc,
                ),
                (true, false) => ctx.mxm(
                    &pool[c],
                    &pool[a],
                    NoAccum,
                    plus_times::<i64>(),
                    &pool[a],
                    &pool[b],
                    &desc,
                ),
                (false, true) => ctx.mxm(
                    &pool[c],
                    NoMask,
                    Accum(Plus::<i64>::new()),
                    plus_times::<i64>(),
                    &pool[a],
                    &pool[b],
                    &desc,
                ),
                (true, true) => ctx.mxm(
                    &pool[c],
                    &pool[b],
                    Accum(Plus::<i64>::new()),
                    plus_times::<i64>(),
                    &pool[a],
                    &pool[b],
                    &desc,
                ),
            }
        }
        Step::EwiseAdd { c, a, b } => ctx.ewise_add_matrix(
            &pool[c],
            NoMask,
            NoAccum,
            Plus::new(),
            &pool[a],
            &pool[b],
            &d,
        ),
        Step::EwiseMult { c, a, b, masked } => {
            if masked {
                ctx.ewise_mult_matrix(
                    &pool[c],
                    &pool[b],
                    NoAccum,
                    Times::new(),
                    &pool[a],
                    &pool[b],
                    &Descriptor::default().structural_mask(),
                )
            } else {
                ctx.ewise_mult_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Times::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
            }
        }
        Step::Apply { c, a, negate } => {
            if negate {
                ctx.apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d)
            } else {
                ctx.apply_matrix(&pool[c], NoMask, NoAccum, Identity::new(), &pool[a], &d)
            }
        }
        Step::Transpose { c, a } => ctx.transpose(&pool[c], NoMask, NoAccum, &pool[a], &d),
        Step::AssignScalar { c, v } => {
            ctx.assign_scalar_matrix(&pool[c], NoMask, NoAccum, v, ALL, ALL, &d)
        }
        Step::Clear { c } => {
            pool[c].clear();
            Ok(())
        }
    }
}

/// Interpret a sequence with faults injected before the steps named in
/// `faults`. Returns each pool object's final observation — its tuples,
/// or the error observing it reports (a poisoned object stays poisoned,
/// §V) — plus the first error the run surfaced (from the failing call
/// in blocking mode, from `wait()` in nonblocking mode).
#[allow(clippy::type_complexity)]
fn interpret_faulty(
    ctx: &Context,
    seeds: &[Vec<(usize, usize, i64)>],
    steps: &[Step],
    faults: &[usize],
) -> (Vec<Result<Vec<(usize, usize, i64)>>>, Option<Error>) {
    let pool: Vec<Matrix<i64>> = seeds
        .iter()
        .map(|t| Matrix::from_tuples(N, N, t).unwrap())
        .collect();
    let mut first_err: Option<Error> = None;
    for (k, s) in steps.iter().enumerate() {
        if faults.contains(&k) {
            ctx.inject_fault(Error::InjectedFault(format!("fault@{k}")));
        }
        if let Err(e) = run_step(ctx, &pool, s) {
            first_err.get_or_insert(e);
        }
    }
    if let Err(e) = ctx.wait() {
        first_err.get_or_insert(e);
    }
    let obs = pool.iter().map(|m| m.extract_tuples()).collect();
    (obs, first_err)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocking_equals_nonblocking(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..20),
    ) {
        let blocking = interpret(&Context::blocking(), &seeds, &steps);
        let nonblocking = interpret(&Context::nonblocking(), &seeds, &steps);
        prop_assert_eq!(blocking, nonblocking);
    }

    #[test]
    fn interleaved_observation_matches_end_observation(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        // forcing completion mid-sequence (via nvals) must not change
        // final results
        let plain = interpret(&Context::nonblocking(), &seeds, &steps);
        let ctx = Context::nonblocking();
        let pool: Vec<Matrix<i64>> = seeds
            .iter()
            .map(|t| Matrix::from_tuples(N, N, t).unwrap())
            .collect();
        let d = Descriptor::default();
        for (k, s) in steps.iter().enumerate() {
            // re-run the same interpretation inline, observing after
            // every second step
            match *s {
                Step::Mxm { c, a, b, masked, accum, tran, replace } => {
                    let mut desc = Descriptor::default().structural_mask();
                    if tran { desc = desc.transpose_first(); }
                    if replace { desc = desc.replace(); }
                    match (masked, accum) {
                        (false, false) => ctx.mxm(&pool[c], NoMask, NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (true, false) => ctx.mxm(&pool[c], &pool[a], NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (false, true) => ctx.mxm(&pool[c], NoMask, Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (true, true) => ctx.mxm(&pool[c], &pool[b], Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                    }.unwrap();
                }
                Step::EwiseAdd { c, a, b } => ctx.ewise_add_matrix(&pool[c], NoMask, NoAccum, Plus::new(), &pool[a], &pool[b], &d).unwrap(),
                Step::EwiseMult { c, a, b, masked } => {
                    if masked {
                        ctx.ewise_mult_matrix(&pool[c], &pool[b], NoAccum, Times::new(), &pool[a], &pool[b], &Descriptor::default().structural_mask()).unwrap()
                    } else {
                        ctx.ewise_mult_matrix(&pool[c], NoMask, NoAccum, Times::new(), &pool[a], &pool[b], &d).unwrap()
                    }
                }
                Step::Apply { c, a, negate } => {
                    if negate {
                        ctx.apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d).unwrap()
                    } else {
                        ctx.apply_matrix(&pool[c], NoMask, NoAccum, Identity::new(), &pool[a], &d).unwrap()
                    }
                }
                Step::Transpose { c, a } => ctx.transpose(&pool[c], NoMask, NoAccum, &pool[a], &d).unwrap(),
                Step::AssignScalar { c, v } => ctx.assign_scalar_matrix(&pool[c], NoMask, NoAccum, v, ALL, ALL, &d).unwrap(),
                Step::Clear { c } => pool[c].clear(),
            }
            if k % 2 == 1 {
                // observation forces completion of this object's cone
                let _ = pool[k % 3].nvals().unwrap();
            }
        }
        ctx.wait().unwrap();
        let observed: Vec<_> = pool.iter().map(|m| m.extract_tuples().unwrap()).collect();
        prop_assert_eq!(observed, plain);
    }

    /// The storage engine must be invisible: pinning pool objects to
    /// any of the four formats (or leaving Auto selection on) changes
    /// no observable result, in any execution mode. Forced formats also
    /// direct every *computed* result into that layout, so this drives
    /// the format-specific kernel paths, not just migrations.
    #[test]
    fn formats_are_observationally_invisible(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..16),
        formats in formats_strategy(),
    ) {
        let baseline = interpret(&Context::blocking(), &seeds, &steps);
        let blk = interpret_with_formats(&Context::blocking(), &seeds, &steps, &formats);
        let nb_seq = interpret_with_formats(&Context::nonblocking_sequential(), &seeds, &steps, &formats);
        let nb_par = interpret_with_formats(&Context::nonblocking_parallel(), &seeds, &steps, &formats);
        prop_assert_eq!(&blk, &baseline);
        prop_assert_eq!(&nb_seq, &baseline);
        prop_assert_eq!(&nb_par, &baseline);
    }

    /// The scheduler must be invisible: blocking, nonblocking with the
    /// sequential driver, and nonblocking with the worker pool agree on
    /// every observable object. The fusion axis rides along: the
    /// default contexts run with `FusePolicy::On`, and the two explicit
    /// `FusePolicy::Off` runs pin the as-written DAG as the baseline —
    /// §IV rewrites may never change an observation.
    #[test]
    fn three_execution_paths_agree(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..20),
    ) {
        let blocking = interpret(&Context::blocking(), &seeds, &steps);
        let nb_seq = interpret(&Context::nonblocking_sequential(), &seeds, &steps);
        let nb_par = interpret(&Context::nonblocking_parallel(), &seeds, &steps);
        let nb_seq_nofuse = interpret(
            &Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Sequential, FusePolicy::Off),
            &seeds, &steps);
        let nb_par_nofuse = interpret(
            &Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Parallel, FusePolicy::Off),
            &seeds, &steps);
        prop_assert_eq!(&blocking, &nb_seq);
        prop_assert_eq!(&nb_seq, &nb_par);
        prop_assert_eq!(&nb_seq, &nb_seq_nofuse);
        prop_assert_eq!(&nb_par, &nb_par_nofuse);
    }

    /// §V with concurrency: injected execution faults poison the same
    /// objects in all three execution paths, and the two nonblocking
    /// drivers report the same program-order-first error from `wait()` —
    /// never a schedule-dependent one. (Blocking's error comes from the
    /// failing call itself and may name an op that nonblocking elides as
    /// dead code, so only its *object states* are compared.)
    #[test]
    fn injected_faults_are_schedule_independent(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..16),
        faults in proptest::collection::vec(0usize..16, 1..3),
    ) {
        let (obs_blk, _err_blk) =
            interpret_faulty(&Context::blocking(), &seeds, &steps, &faults);
        let (obs_seq, err_seq) =
            interpret_faulty(&Context::nonblocking_sequential(), &seeds, &steps, &faults);
        let (obs_par, err_par) =
            interpret_faulty(&Context::nonblocking_parallel(), &seeds, &steps, &faults);
        // fusion shortens failure-propagation chains but may not change
        // which objects poison or which error wait() reports
        let (obs_nofuse, err_nofuse) = interpret_faulty(
            &Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Sequential, FusePolicy::Off),
            &seeds, &steps, &faults);
        prop_assert_eq!(&obs_blk, &obs_seq);
        prop_assert_eq!(&obs_seq, &obs_par);
        prop_assert_eq!(&obs_seq, &obs_nofuse);
        prop_assert_eq!(&err_seq, &err_par);
        prop_assert_eq!(&err_seq, &err_nofuse);
    }
}

// ---------------------------------------------------------------------------
// Float value classes: §IV equivalence must hold for IEEE-754 special
// values too — NaN, ±∞, and -0.0 — across all three execution paths and
// both fusion policies. Equality is semantic: NaNs (any payload) count
// as equal, and comparisons otherwise use IEEE `==` (so 0.0 == -0.0 —
// the sign of a zero is not an observation the paper's modes contract
// covers, but NaN-vs-number very much is).
// ---------------------------------------------------------------------------

/// The special-heavy palette float seeds draw from.
const FLOAT_CLASS: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    1.5,
    -2.0,
    3.0,
];

fn float_seeds_strategy() -> impl Strategy<Value = Vec<Vec<(usize, usize, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..N, 0..N, 0usize..FLOAT_CLASS.len()), 0..10).prop_map(
            |mut t| {
                t.sort_by_key(|&(i, j, _)| (i, j));
                t.dedup_by_key(|&mut (i, j, _)| (i, j));
                t.into_iter()
                    .map(|(i, j, k)| (i, j, FLOAT_CLASS[k]))
                    .collect()
            },
        ),
        3,
    )
}

/// A float step: a subset of the integer interpreter whose kernels are
/// order-deterministic per element, so cross-schedule agreement is
/// exact (not merely up to round-off).
#[derive(Debug, Clone)]
enum FStep {
    Mxm {
        c: usize,
        a: usize,
        b: usize,
        masked: bool,
    },
    EwiseAdd {
        c: usize,
        a: usize,
        b: usize,
    },
    EwiseMult {
        c: usize,
        a: usize,
        b: usize,
    },
    Negate {
        c: usize,
        a: usize,
    },
    Transpose {
        c: usize,
        a: usize,
    },
}

fn fstep_strategy() -> impl Strategy<Value = FStep> {
    let idx = 0usize..3;
    prop_oneof![
        (idx.clone(), idx.clone(), idx.clone(), any::<bool>())
            .prop_map(|(c, a, b, masked)| FStep::Mxm { c, a, b, masked }),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(c, a, b)| FStep::EwiseAdd { c, a, b }),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(c, a, b)| FStep::EwiseMult { c, a, b }),
        (idx.clone(), idx.clone()).prop_map(|(c, a)| FStep::Negate { c, a }),
        (idx.clone(), idx.clone()).prop_map(|(c, a)| FStep::Transpose { c, a }),
    ]
}

/// Final tuples of each pool object, plus the Min/Max/Plus scalar
/// reductions of pool object 0 — the scalar observations exercise the
/// fmin/fmax NaN semantics (and the dot-reduce rewrite) on every path.
type FloatObs = (Vec<Vec<(usize, usize, f64)>>, [f64; 3]);

fn interpret_floats(
    ctx: &Context,
    seeds: &[Vec<(usize, usize, f64)>],
    steps: &[FStep],
) -> FloatObs {
    let pool: Vec<Matrix<f64>> = seeds
        .iter()
        .map(|t| Matrix::from_tuples(N, N, t).unwrap())
        .collect();
    let d = Descriptor::default();
    for s in steps {
        match *s {
            FStep::Mxm { c, a, b, masked } => {
                if masked {
                    ctx.mxm(
                        &pool[c],
                        &pool[a],
                        NoAccum,
                        plus_times::<f64>(),
                        &pool[a],
                        &pool[b],
                        &Descriptor::default().structural_mask(),
                    )
                } else {
                    ctx.mxm(
                        &pool[c],
                        NoMask,
                        NoAccum,
                        plus_times::<f64>(),
                        &pool[a],
                        &pool[b],
                        &d,
                    )
                }
                .unwrap();
            }
            FStep::EwiseAdd { c, a, b } => ctx
                .ewise_add_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Plus::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
                .unwrap(),
            FStep::EwiseMult { c, a, b } => ctx
                .ewise_mult_matrix(
                    &pool[c],
                    NoMask,
                    NoAccum,
                    Times::new(),
                    &pool[a],
                    &pool[b],
                    &d,
                )
                .unwrap(),
            FStep::Negate { c, a } => ctx
                .apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d)
                .unwrap(),
            FStep::Transpose { c, a } => ctx
                .transpose(&pool[c], NoMask, NoAccum, &pool[a], &d)
                .unwrap(),
        }
    }
    let scalars = [
        ctx.reduce_matrix_to_scalar(MinMonoid::<f64>::new(), &pool[0])
            .unwrap(),
        ctx.reduce_matrix_to_scalar(MaxMonoid::<f64>::new(), &pool[0])
            .unwrap(),
        ctx.reduce_matrix_to_scalar(PlusMonoid::<f64>::new(), &pool[0])
            .unwrap(),
    ];
    ctx.wait().unwrap();
    let tuples = pool.iter().map(|m| m.extract_tuples().unwrap()).collect();
    (tuples, scalars)
}

/// IEEE equality extended with a single NaN class.
fn f64_semantic_eq(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

fn float_obs_eq(x: &FloatObs, y: &FloatObs) -> bool {
    let tuples_eq = x.0.len() == y.0.len()
        && x.0.iter().zip(&y.0).all(|(p, q)| {
            p.len() == q.len()
                && p.iter()
                    .zip(q)
                    .all(|(&(i, j, u), &(k, l, v))| (i, j) == (k, l) && f64_semantic_eq(u, v))
        });
    tuples_eq && x.1.iter().zip(&y.1).all(|(&u, &v)| f64_semantic_eq(u, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn float_specials_agree_across_paths_and_fusion(
        seeds in float_seeds_strategy(),
        steps in proptest::collection::vec(fstep_strategy(), 1..14),
    ) {
        let blocking = interpret_floats(&Context::blocking(), &seeds, &steps);
        let runs = [
            ("nb-seq fuse-on", interpret_floats(&Context::nonblocking_sequential(), &seeds, &steps)),
            ("nb-par fuse-on", interpret_floats(&Context::nonblocking_parallel(), &seeds, &steps)),
            ("nb-seq fuse-off", interpret_floats(
                &Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Sequential, FusePolicy::Off),
                &seeds, &steps)),
            ("nb-par fuse-off", interpret_floats(
                &Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Parallel, FusePolicy::Off),
                &seeds, &steps)),
        ];
        for (label, obs) in &runs {
            prop_assert!(
                float_obs_eq(&blocking, obs),
                "{} diverged from blocking:\n  blocking: {:?}\n  {}: {:?}",
                label, blocking, label, obs
            );
        }
    }
}
