//! Experiment E1 (DESIGN.md), paper §IV: "the results from blocking and
//! nonblocking modes should be identical". Random sequences of
//! GraphBLAS method calls are interpreted twice — once per mode — and
//! every observable object must agree. Integer arithmetic keeps
//! equality exact (no round-off caveat needed).

use graphblas_core::prelude::*;
use proptest::prelude::*;

/// One step of a random method sequence over a pool of 3 square
/// matrices.
#[derive(Debug, Clone)]
enum Step {
    Mxm { c: usize, a: usize, b: usize, masked: bool, accum: bool, tran: bool, replace: bool },
    EwiseAdd { c: usize, a: usize, b: usize },
    EwiseMult { c: usize, a: usize, b: usize, masked: bool },
    Apply { c: usize, a: usize, negate: bool },
    Transpose { c: usize, a: usize },
    AssignScalar { c: usize, v: i64 },
    Clear { c: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let idx = 0usize..3;
    prop_oneof![
        (idx.clone(), idx.clone(), idx.clone(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>())
            .prop_map(|(c, a, b, masked, accum, tran, replace)| Step::Mxm { c, a, b, masked, accum, tran, replace }),
        (idx.clone(), idx.clone(), idx.clone())
            .prop_map(|(c, a, b)| Step::EwiseAdd { c, a, b }),
        (idx.clone(), idx.clone(), idx.clone(), any::<bool>())
            .prop_map(|(c, a, b, masked)| Step::EwiseMult { c, a, b, masked }),
        (idx.clone(), idx.clone(), any::<bool>())
            .prop_map(|(c, a, negate)| Step::Apply { c, a, negate }),
        (idx.clone(), idx.clone()).prop_map(|(c, a)| Step::Transpose { c, a }),
        (idx.clone(), -5i64..5).prop_map(|(c, v)| Step::AssignScalar { c, v }),
        idx.prop_map(|c| Step::Clear { c }),
    ]
}

const N: usize = 5;

fn interpret(ctx: &Context, seeds: &[Vec<(usize, usize, i64)>], steps: &[Step]) -> Vec<Vec<(usize, usize, i64)>> {
    let pool: Vec<Matrix<i64>> = seeds
        .iter()
        .map(|t| Matrix::from_tuples(N, N, t).unwrap())
        .collect();
    let d = Descriptor::default();
    for s in steps {
        match *s {
            Step::Mxm { c, a, b, masked, accum, tran, replace } => {
                let mut desc = Descriptor::default().structural_mask();
                if tran {
                    desc = desc.transpose_first();
                }
                if replace {
                    desc = desc.replace();
                }
                // mask and output may alias inputs: snapshots keep it
                // well defined
                match (masked, accum) {
                    (false, false) => ctx.mxm(&pool[c], NoMask, NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                    (true, false) => ctx.mxm(&pool[c], &pool[a], NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                    (false, true) => ctx.mxm(&pool[c], NoMask, Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                    (true, true) => ctx.mxm(&pool[c], &pool[b], Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                }
                .unwrap();
            }
            Step::EwiseAdd { c, a, b } => {
                ctx.ewise_add_matrix(&pool[c], NoMask, NoAccum, Plus::new(), &pool[a], &pool[b], &d)
                    .unwrap();
            }
            Step::EwiseMult { c, a, b, masked } => {
                if masked {
                    ctx.ewise_mult_matrix(&pool[c], &pool[b], NoAccum, Times::new(), &pool[a], &pool[b], &Descriptor::default().structural_mask())
                        .unwrap();
                } else {
                    ctx.ewise_mult_matrix(&pool[c], NoMask, NoAccum, Times::new(), &pool[a], &pool[b], &d)
                        .unwrap();
                }
            }
            Step::Apply { c, a, negate } => {
                if negate {
                    ctx.apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d)
                        .unwrap();
                } else {
                    ctx.apply_matrix(&pool[c], NoMask, NoAccum, Identity::new(), &pool[a], &d)
                        .unwrap();
                }
            }
            Step::Transpose { c, a } => {
                ctx.transpose(&pool[c], NoMask, NoAccum, &pool[a], &d).unwrap();
            }
            Step::AssignScalar { c, v } => {
                ctx.assign_scalar_matrix(&pool[c], NoMask, NoAccum, v, ALL, ALL, &d)
                    .unwrap();
            }
            Step::Clear { c } => pool[c].clear(),
        }
    }
    ctx.wait().unwrap();
    pool.iter().map(|m| m.extract_tuples().unwrap()).collect()
}

fn seeds_strategy() -> impl Strategy<Value = Vec<Vec<(usize, usize, i64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..N, 0..N, -4i64..4), 0..10).prop_map(|mut t| {
            t.sort_by_key(|&(i, j, _)| (i, j));
            t.dedup_by_key(|&mut (i, j, _)| (i, j));
            t
        }),
        3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocking_equals_nonblocking(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..20),
    ) {
        let blocking = interpret(&Context::blocking(), &seeds, &steps);
        let nonblocking = interpret(&Context::nonblocking(), &seeds, &steps);
        prop_assert_eq!(blocking, nonblocking);
    }

    #[test]
    fn interleaved_observation_matches_end_observation(
        seeds in seeds_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        // forcing completion mid-sequence (via nvals) must not change
        // final results
        let plain = interpret(&Context::nonblocking(), &seeds, &steps);
        let ctx = Context::nonblocking();
        let pool: Vec<Matrix<i64>> = seeds
            .iter()
            .map(|t| Matrix::from_tuples(N, N, t).unwrap())
            .collect();
        let d = Descriptor::default();
        for (k, s) in steps.iter().enumerate() {
            // re-run the same interpretation inline, observing after
            // every second step
            match *s {
                Step::Mxm { c, a, b, masked, accum, tran, replace } => {
                    let mut desc = Descriptor::default().structural_mask();
                    if tran { desc = desc.transpose_first(); }
                    if replace { desc = desc.replace(); }
                    match (masked, accum) {
                        (false, false) => ctx.mxm(&pool[c], NoMask, NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (true, false) => ctx.mxm(&pool[c], &pool[a], NoAccum, plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (false, true) => ctx.mxm(&pool[c], NoMask, Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                        (true, true) => ctx.mxm(&pool[c], &pool[b], Accum(Plus::<i64>::new()), plus_times::<i64>(), &pool[a], &pool[b], &desc),
                    }.unwrap();
                }
                Step::EwiseAdd { c, a, b } => ctx.ewise_add_matrix(&pool[c], NoMask, NoAccum, Plus::new(), &pool[a], &pool[b], &d).unwrap(),
                Step::EwiseMult { c, a, b, masked } => {
                    if masked {
                        ctx.ewise_mult_matrix(&pool[c], &pool[b], NoAccum, Times::new(), &pool[a], &pool[b], &Descriptor::default().structural_mask()).unwrap()
                    } else {
                        ctx.ewise_mult_matrix(&pool[c], NoMask, NoAccum, Times::new(), &pool[a], &pool[b], &d).unwrap()
                    }
                }
                Step::Apply { c, a, negate } => {
                    if negate {
                        ctx.apply_matrix(&pool[c], NoMask, NoAccum, Ainv::new(), &pool[a], &d).unwrap()
                    } else {
                        ctx.apply_matrix(&pool[c], NoMask, NoAccum, Identity::new(), &pool[a], &d).unwrap()
                    }
                }
                Step::Transpose { c, a } => ctx.transpose(&pool[c], NoMask, NoAccum, &pool[a], &d).unwrap(),
                Step::AssignScalar { c, v } => ctx.assign_scalar_matrix(&pool[c], NoMask, NoAccum, v, ALL, ALL, &d).unwrap(),
                Step::Clear { c } => pool[c].clear(),
            }
            if k % 2 == 1 {
                // observation forces completion of this object's cone
                let _ = pool[k % 3].nvals().unwrap();
            }
        }
        ctx.wait().unwrap();
        let observed: Vec<_> = pool.iter().map(|m| m.extract_tuples().unwrap()).collect();
        prop_assert_eq!(observed, plain);
    }
}
