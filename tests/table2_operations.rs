//! Experiment T2 (DESIGN.md): Table II — every fundamental GraphBLAS
//! operation, exercised with the full Figure 2 semantics (accumulator,
//! mask, descriptor) through the public API.

use graphblas_core::prelude::*;

fn ctx() -> Context {
    Context::blocking()
}

fn a_matrix() -> Matrix<i64> {
    // [ 1 2 . ]
    // [ . 3 4 ]
    // [ 5 . 6 ]
    Matrix::from_tuples(
        3,
        3,
        &[
            (0, 0, 1),
            (0, 1, 2),
            (1, 1, 3),
            (1, 2, 4),
            (2, 0, 5),
            (2, 2, 6),
        ],
    )
    .unwrap()
}

#[test]
fn op_mxm() {
    let ctx = ctx();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a_matrix(),
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    // row 0: 1*[1,2,.] + 2*[.,3,4] = [1, 8, 8]
    assert_eq!(c.get(0, 0).unwrap(), Some(1));
    assert_eq!(c.get(0, 1).unwrap(), Some(8));
    assert_eq!(c.get(0, 2).unwrap(), Some(8));
}

#[test]
fn op_mxv_and_vxm() {
    let ctx = ctx();
    let v = Vector::from_dense(&[1i64, 10, 100]).unwrap();
    let w = Vector::<i64>::new(3).unwrap();
    ctx.mxv(
        &w,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a_matrix(),
        &v,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(21), Some(430), Some(605)]);
    ctx.vxm(
        &w,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &v,
        &a_matrix(),
        &Descriptor::default().replace(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(501), Some(32), Some(640)]);
}

#[test]
fn op_ewise_mult_and_add() {
    let ctx = ctx();
    let b = Matrix::from_tuples(3, 3, &[(0, 0, 10i64), (1, 2, 20), (2, 1, 30)]).unwrap();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    ctx.ewise_mult_matrix(
        &c,
        NoMask,
        NoAccum,
        Times::new(),
        &a_matrix(),
        &b,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 10), (1, 2, 80)]);
    ctx.ewise_add_matrix(
        &c,
        NoMask,
        NoAccum,
        Plus::new(),
        &a_matrix(),
        &b,
        &Descriptor::default().replace(),
    )
    .unwrap();
    assert_eq!(c.nvals().unwrap(), 7); // union pattern
    assert_eq!(c.get(0, 0).unwrap(), Some(11));
    assert_eq!(c.get(2, 1).unwrap(), Some(30)); // pass-through

    // vector variants
    let u = Vector::from_tuples(3, &[(0, 1i64), (1, 2)]).unwrap();
    let v = Vector::from_tuples(3, &[(1, 10i64), (2, 20)]).unwrap();
    let w = Vector::<i64>::new(3).unwrap();
    ctx.ewise_add_vector(
        &w,
        NoMask,
        NoAccum,
        Plus::new(),
        &u,
        &v,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(1), Some(12), Some(20)]);
    ctx.ewise_mult_vector(
        &w,
        NoMask,
        NoAccum,
        Times::new(),
        &u,
        &v,
        &Descriptor::default().replace(),
    )
    .unwrap();
    assert_eq!(w.extract_tuples().unwrap(), vec![(1, 20)]);
}

#[test]
fn op_reduce_row() {
    let ctx = ctx();
    let w = Vector::<i64>::new(3).unwrap();
    ctx.reduce_rows(
        &w,
        NoMask,
        NoAccum,
        PlusMonoid::new(),
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(3), Some(7), Some(11)]);
}

#[test]
fn op_apply() {
    let ctx = ctx();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    ctx.apply_matrix(
        &c,
        NoMask,
        NoAccum,
        Ainv::new(),
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.get(2, 2).unwrap(), Some(-6));
    let w = Vector::<i64>::new(3).unwrap();
    let u = Vector::from_dense(&[1i64, -2, 3]).unwrap();
    ctx.apply_vector(&w, NoMask, NoAccum, Abs::new(), &u, &Descriptor::default())
        .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(1), Some(2), Some(3)]);
}

#[test]
fn op_transpose() {
    let ctx = ctx();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    ctx.transpose(&c, NoMask, NoAccum, &a_matrix(), &Descriptor::default())
        .unwrap();
    assert_eq!(c.get(1, 0).unwrap(), Some(2));
    assert_eq!(c.get(0, 2).unwrap(), Some(5));
    // involution through the API
    let cc = Matrix::<i64>::new(3, 3).unwrap();
    ctx.transpose(&cc, NoMask, NoAccum, &c, &Descriptor::default())
        .unwrap();
    assert_eq!(
        cc.extract_tuples().unwrap(),
        a_matrix().extract_tuples().unwrap()
    );
}

#[test]
fn op_extract() {
    let ctx = ctx();
    let c = Matrix::<i64>::new(2, 2).unwrap();
    ctx.extract_matrix(
        &c,
        NoMask,
        NoAccum,
        &a_matrix(),
        IndexSelection::List(&[2, 0]),
        IndexSelection::List(&[0, 2]),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(
        c.extract_tuples().unwrap(),
        vec![(0, 0, 5), (0, 1, 6), (1, 0, 1)]
    );
    let w = Vector::<i64>::new(2).unwrap();
    let u = Vector::from_dense(&[7i64, 8, 9]).unwrap();
    ctx.extract_vector(
        &w,
        NoMask,
        NoAccum,
        &u,
        IndexSelection::List(&[2, 0]),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(9), Some(7)]);
}

#[test]
fn op_assign() {
    let ctx = ctx();
    let c = a_matrix();
    let src = Matrix::from_tuples(1, 2, &[(0, 0, 99i64)]).unwrap();
    ctx.assign_matrix(
        &c,
        NoMask,
        NoAccum,
        &src,
        IndexSelection::List(&[1]),
        IndexSelection::List(&[1, 2]),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.get(1, 1).unwrap(), Some(99));
    assert_eq!(c.get(1, 2).unwrap(), None); // region deletion
    assert_eq!(c.get(0, 0).unwrap(), Some(1)); // outside region intact

    let w = Vector::from_dense(&[1i64, 2, 3]).unwrap();
    let uu = Vector::from_tuples(2, &[(0, 50i64), (1, 60)]).unwrap();
    ctx.assign_vector(
        &w,
        NoMask,
        NoAccum,
        &uu,
        IndexSelection::List(&[2, 0]),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.to_dense().unwrap(), vec![Some(60), Some(2), Some(50)]);
}

#[test]
fn accumulator_semantics_table2_header() {
    // Table II's ⊙=: with accum, old C merges with T on the union
    let ctx = ctx();
    let c = Matrix::from_tuples(3, 3, &[(0, 2, 100i64)]).unwrap();
    ctx.mxm(
        &c,
        NoMask,
        Accum(Plus::<i64>::new()),
        plus_times::<i64>(),
        &a_matrix(),
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.get(0, 2).unwrap(), Some(108)); // 100 ⊙ 8
    assert_eq!(c.get(0, 0).unwrap(), Some(1)); // T-only passes through
}

#[test]
fn transposed_inputs_per_descriptor() {
    // Table II footnote: inputs may be selected for transposition
    let ctx = ctx();
    let c1 = Matrix::<i64>::new(3, 3).unwrap();
    let c2 = Matrix::<i64>::new(3, 3).unwrap();
    let at = Matrix::<i64>::new(3, 3).unwrap();
    ctx.transpose(&at, NoMask, NoAccum, &a_matrix(), &Descriptor::default())
        .unwrap();
    ctx.mxm(
        &c1,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &at,
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    ctx.mxm(
        &c2,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a_matrix(),
        &a_matrix(),
        &Descriptor::default().transpose_first(),
    )
    .unwrap();
    assert_eq!(c1.extract_tuples().unwrap(), c2.extract_tuples().unwrap());
}

#[test]
fn masks_control_writes_per_table2_footnote() {
    let ctx = ctx();
    let mask = Matrix::from_tuples(3, 3, &[(0, 1, true), (2, 0, true)]).unwrap();
    let c = Matrix::from_tuples(3, 3, &[(1, 1, 777i64)]).unwrap();
    ctx.mxm(
        &c,
        &mask,
        NoAccum,
        plus_times::<i64>(),
        &a_matrix(),
        &a_matrix(),
        &Descriptor::default(),
    )
    .unwrap();
    // merge mode: unmasked old value survives, masked positions updated
    assert_eq!(c.get(1, 1).unwrap(), Some(777));
    assert_eq!(c.get(0, 1).unwrap(), Some(8));
    assert!(c.get(0, 0).unwrap().is_none());
}
