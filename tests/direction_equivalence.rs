//! PR acceptance property for SpMSpV direction optimization
//! (`kernel::spmspv`): the push, pull, and dense matrix–vector kernels
//! are **bitwise** interchangeable — values *and* pattern, NaN / ±∞ /
//! -0.0 payloads included — across execution modes, storage formats,
//! transposition, mask shapes, and intra-kernel parallelism degrees
//! {1, 2, 8}. The heuristic may therefore switch direction per
//! operation without ever changing a result, which the trailing trace
//! test shows it actually does mid-BFS.
//!
//! The direction override is process-wide (kernels run on pool worker
//! threads), so every test that forces a direction serializes on one
//! mutex.

use std::sync::Mutex;

use graphblas_core::par;
use graphblas_core::prelude::*;
use graphblas_core::spmspv::{self, Direction};
use graphblas_core::SchedPolicy;
use proptest::prelude::*;

const N: usize = 24;
const DEGREES: [usize; 3] = [1, 2, 8];

/// Forced directions are a process-wide override; hold this across any
/// region that sets one so concurrent test threads never interleave.
static DIRECTION_LOCK: Mutex<()> = Mutex::new(());

/// Decode a strategy byte into an f64 payload; low codes are the
/// adversarial specials (NaN, ±∞, -0.0).
fn fval(code: u8) -> f64 {
    match code {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        c => (f64::from(c) - 128.0) * 0.625,
    }
}

type Tuples = Vec<(usize, usize, u8)>;

fn sparse(max_nnz: usize) -> impl Strategy<Value = Tuples> {
    proptest::collection::vec((0..N, 0..N, 0u8..255), 0..=max_nnz).prop_map(|mut t| {
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        t
    })
}

fn to_matrix(t: &Tuples, format: Option<Format>) -> Matrix<f64> {
    let tuples: Vec<(usize, usize, f64)> = t.iter().map(|&(i, j, c)| (i, j, fval(c))).collect();
    let m = Matrix::from_tuples(N, N, &tuples).unwrap();
    if let Some(f) = format {
        m.set_format(f).unwrap();
    }
    m
}

fn to_vector(t: &Tuples) -> Vector<f64> {
    let v = Vector::<f64>::new(N).unwrap();
    for &(i, _, c) in t {
        v.set(i, fval(c)).unwrap();
    }
    v
}

fn vector_bits(v: &Vector<f64>) -> Vec<(usize, u64)> {
    v.extract_tuples()
        .unwrap()
        .into_iter()
        .map(|(i, x)| (i, x.to_bits()))
        .collect()
}

/// Run `f` with the intra-kernel degree pinned to `k` and the cost
/// model forced so even proptest-sized fixtures chunk.
fn at_degree<R>(k: usize, f: impl FnOnce() -> R) -> R {
    par::with_cost_model(1, 0, || par::with_parallelism(k, f))
}

const FORMATS: [Option<Format>; 4] = [
    Some(Format::Csr),
    Some(Format::Csc),
    Some(Format::Bitmap),
    Some(Format::Hyper),
];

const DIRECTIONS: [Direction; 4] = [
    Direction::Dense,
    Direction::Push,
    Direction::Pull,
    Direction::Auto,
];

fn contexts() -> [Context; 3] {
    [
        Context::blocking(),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential),
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel),
    ]
}

fn mask_descriptor(complement: bool, structural: bool) -> Descriptor {
    let mut d = Descriptor::default();
    if complement {
        d = d.complement_mask();
    }
    if structural {
        d = d.structural_mask();
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `vxm` answers bitwise identically whichever direction computes
    /// it, under every (mode, format, degree, transpose, mask) shape.
    #[test]
    fn vxm_directions_agree_bitwise(
        a in sparse(96),
        u in sparse(24),
        mask in sparse(24),
        transpose in any::<bool>(),
        complement in any::<bool>(),
        structural in any::<bool>(),
    ) {
        let _serialize = DIRECTION_LOCK.lock().unwrap();
        let desc = if transpose {
            mask_descriptor(complement, structural).transpose_second()
        } else {
            mask_descriptor(complement, structural)
        };
        for ctx in contexts() {
            for format in FORMATS {
                let am = to_matrix(&a, format);
                let uv = to_vector(&u);
                let mv = to_vector(&mask);
                for k in DEGREES {
                    let run = |dir| at_degree(k, || spmspv::with_direction(dir, || {
                        let w = Vector::<f64>::new(N).unwrap();
                        ctx.vxm(&w, &mv, NoAccum, plus_times::<f64>(), &uv, &am, &desc)
                            .unwrap();
                        vector_bits(&w)
                    }));
                    let dense = run(Direction::Dense);
                    for dir in DIRECTIONS {
                        prop_assert_eq!(
                            &dense, &run(dir),
                            "vxm {:?} diverged from Dense (mode {:?} format {:?} \
                             degree {} transpose {} complement {} structural {})",
                            dir, ctx.mode(), format, k, transpose, complement, structural
                        );
                    }
                }
            }
        }
    }

    /// Same for `mxv`, whose forward orientation is the transpose of
    /// `vxm`'s — the dispatch must flip push/pull sides accordingly.
    #[test]
    fn mxv_directions_agree_bitwise(
        a in sparse(96),
        u in sparse(24),
        mask in sparse(24),
        transpose in any::<bool>(),
        complement in any::<bool>(),
    ) {
        let _serialize = DIRECTION_LOCK.lock().unwrap();
        let desc = if transpose {
            mask_descriptor(complement, true).transpose_first()
        } else {
            mask_descriptor(complement, true)
        };
        for ctx in contexts() {
            for format in FORMATS {
                let am = to_matrix(&a, format);
                let uv = to_vector(&u);
                let mv = to_vector(&mask);
                for k in DEGREES {
                    let run = |dir| at_degree(k, || spmspv::with_direction(dir, || {
                        let w = Vector::<f64>::new(N).unwrap();
                        ctx.mxv(&w, &mv, NoAccum, plus_times::<f64>(), &am, &uv, &desc)
                            .unwrap();
                        vector_bits(&w)
                    }));
                    let dense = run(Direction::Dense);
                    for dir in DIRECTIONS {
                        prop_assert_eq!(
                            &dense, &run(dir),
                            "mxv {:?} diverged from Dense (mode {:?} format {:?} \
                             degree {} transpose {} complement {})",
                            dir, ctx.mode(), format, k, transpose, complement
                        );
                    }
                }
            }
        }
    }

    /// The no-mask accumulating shape (PageRank's step) agrees too —
    /// the accumulate happens after the product, so direction must not
    /// leak into the merge.
    #[test]
    fn accumulated_vxm_directions_agree(
        a in sparse(96),
        u in sparse(24),
        w0 in sparse(24),
    ) {
        let _serialize = DIRECTION_LOCK.lock().unwrap();
        let ctx = Context::blocking();
        let am = to_matrix(&a, None);
        let uv = to_vector(&u);
        for k in DEGREES {
            let run = |dir| at_degree(k, || spmspv::with_direction(dir, || {
                let w = to_vector(&w0);
                ctx.vxm(&w, NoMask, Accum(Plus::<f64>::new()), plus_times::<f64>(),
                    &uv, &am, &Descriptor::default()).unwrap();
                vector_bits(&w)
            }));
            let dense = run(Direction::Dense);
            for dir in DIRECTIONS {
                prop_assert_eq!(&dense, &run(dir), "accumulated vxm {:?} diverged", dir);
            }
        }
    }
}

/// E12's qualitative claim, as a test: on a scale-free social graph the
/// heuristic *switches* direction across one BFS — push on the sparse
/// early frontiers, pull (against the complemented visited mask) near
/// the dense peak — and the trace records each choice.
#[test]
fn bfs_trace_shows_direction_switching() {
    let _serialize = DIRECTION_LOCK.lock().unwrap();
    let el = graphblas_gen::barabasi_albert(800, 4, 7).symmetrize();
    let a = Matrix::from_tuples(el.n, el.n, &el.bool_tuples()).unwrap();
    let ctx = Context::nonblocking();
    ctx.enable_trace(true);
    let levels = graphblas_algorithms::bfs_levels(&ctx, &a, 0).unwrap();
    assert!(
        levels.iter().filter(|l| l.is_some()).count() > 700,
        "BA graph should be mostly connected"
    );
    let trace = ctx.take_trace();
    let dirs: Vec<&'static str> = trace.iter().filter_map(|e| e.direction).collect();
    assert!(
        dirs.contains(&"push"),
        "no push step on sparse frontiers; directions: {dirs:?}"
    );
    assert!(
        dirs.contains(&"pull"),
        "no pull step near the frontier peak; directions: {dirs:?}"
    );
    // Push comes first (frontier of one), and some later step pulls —
    // i.e. the switch happens mid-traversal, not between runs.
    let first_push = dirs.iter().position(|d| *d == "push").unwrap();
    let last_pull = dirs.iter().rposition(|d| *d == "pull").unwrap();
    assert!(
        first_push < last_pull,
        "expected push -> pull over the traversal; directions: {dirs:?}"
    );
}

/// The override itself restores on scope exit even across panics in
/// the guarded region's siblings — Auto outside, forced inside.
#[test]
fn with_direction_scopes_the_override() {
    let _serialize = DIRECTION_LOCK.lock().unwrap();
    assert!(matches!(spmspv::direction_override(), Direction::Auto));
    spmspv::with_direction(Direction::Push, || {
        assert!(matches!(spmspv::direction_override(), Direction::Push));
    });
    assert!(matches!(spmspv::direction_override(), Direction::Auto));
}
