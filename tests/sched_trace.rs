//! The nonblocking scheduler observed from the outside: execution
//! traces (`Context::take_trace`), compute-once semantics for shared
//! intermediates (diamond DAGs), and — under the worker-pool policy —
//! actual concurrency on a wide DAG.

use graphblas_core::prelude::*;
use graphblas_core::SchedPolicy;
use rand::{Rng, SeedableRng};

const N: usize = 256;

fn random_matrix(seed: u64, density: f64) -> Matrix<i64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut tuples = Vec::new();
    for i in 0..N {
        for j in 0..N {
            if rng.random_bool(density) {
                tuples.push((i, j, rng.random_range(-3i64..4)));
            }
        }
    }
    Matrix::from_tuples(N, N, &tuples).unwrap()
}

#[test]
fn trace_records_kinds_shapes_and_timings() {
    let ctx = Context::nonblocking();
    ctx.enable_trace(true);
    let a = random_matrix(1, 0.05);
    let b = random_matrix(2, 0.05);
    let c = Matrix::<i64>::new(N, N).unwrap();
    let s = Matrix::<i64>::new(N, N).unwrap();
    let d = Descriptor::default();
    ctx.mxm(&c, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    ctx.ewise_add_matrix(&s, NoMask, NoAccum, Plus::new(), &a, &c, &d)
        .unwrap();
    ctx.wait().unwrap();
    let trace = ctx.take_trace();
    assert_eq!(trace.len(), 2);
    let mxm = trace.iter().find(|e| e.kind == "mxm").unwrap();
    let add = trace.iter().find(|e| e.kind == "eWiseAdd").unwrap();
    assert_eq!((mxm.rows, mxm.cols), (N, N));
    assert_eq!((add.rows, add.cols), (N, N));
    assert_eq!(mxm.nvals, c.nvals().unwrap());
    assert_eq!(add.nvals, s.nvals().unwrap());
    // program order is preserved in the seq stamps
    assert!(mxm.seq < add.seq);
    for e in &trace {
        assert!(e.start_ns >= e.ready_ns);
        assert!(e.end_ns >= e.start_ns);
    }
    // drained: a second take is empty, and tracing can be switched off
    assert!(ctx.take_trace().is_empty());
    ctx.enable_trace(false);
    ctx.mxm(&c, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
        .unwrap();
    ctx.wait().unwrap();
    assert!(ctx.take_trace().is_empty());
}

/// Diamond regression: an intermediate consumed by several later ops
/// must be scheduled (and computed) exactly once, not once per
/// consumer. The trace gives the op-level evidence: one `transpose`
/// event even though two ops read its output.
#[test]
fn shared_intermediate_is_scheduled_once() {
    for policy in [SchedPolicy::Sequential, SchedPolicy::Parallel] {
        let ctx = Context::with_policy(Mode::Nonblocking, policy);
        ctx.enable_trace(true);
        let a = random_matrix(3, 0.05);
        let mid = Matrix::<i64>::new(N, N).unwrap();
        let left = Matrix::<i64>::new(N, N).unwrap();
        let right = Matrix::<i64>::new(N, N).unwrap();
        let d = Descriptor::default();
        ctx.transpose(&mid, NoMask, NoAccum, &a, &d).unwrap();
        ctx.ewise_add_matrix(&left, NoMask, NoAccum, Plus::new(), &a, &mid, &d)
            .unwrap();
        ctx.ewise_mult_matrix(&right, NoMask, NoAccum, Times::new(), &a, &mid, &d)
            .unwrap();
        ctx.wait().unwrap();
        let trace = ctx.take_trace();
        let transposes = trace.iter().filter(|e| e.kind == "transpose").count();
        assert_eq!(
            transposes, 1,
            "policy {policy:?}: diamond base ran {transposes}x"
        );
        assert_eq!(trace.len(), 3);
    }
}

/// Acceptance: on a wide DAG the pool policy is observably concurrent —
/// the trace names more than one worker. (The pool spawns at least two
/// workers even on one hardware thread; 16 independent products give
/// the OS ample room to interleave them.)
#[test]
fn wide_dag_runs_on_multiple_workers() {
    let ctx = Context::nonblocking_parallel();
    ctx.enable_trace(true);
    let a = random_matrix(4, 0.15);
    let b = random_matrix(5, 0.15);
    let outs: Vec<Matrix<i64>> = (0..16).map(|_| Matrix::<i64>::new(N, N).unwrap()).collect();
    let d = Descriptor::default();
    for out in &outs {
        ctx.mxm(out, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)
            .unwrap();
    }
    ctx.wait().unwrap();
    let trace = ctx.take_trace();
    assert_eq!(trace.len(), 16);
    let workers: std::collections::HashSet<usize> = trace.iter().map(|e| e.worker).collect();
    assert!(
        workers.len() > 1,
        "expected >1 worker on 16 independent mxm ops, saw {workers:?}"
    );
    // all outputs identical (same inputs, schedule-independent results)
    let expect = outs[0].extract_tuples().unwrap();
    for out in &outs[1..] {
        assert_eq!(out.extract_tuples().unwrap(), expect);
    }
}

/// Pending point updates reach kernels as first-class DAG nodes: kernel
/// input capture takes the epoch's non-draining *overlay* node, so the
/// trace carries one `"overlay"` event (interior dependency, so
/// `seq == None`) with the delta-merge statistics, under both scheduler
/// policies. The source handle's log is untouched by the capture.
#[test]
fn overlay_nodes_are_traced_with_merge_stats() {
    for policy in [SchedPolicy::Sequential, SchedPolicy::Parallel] {
        let ctx = Context::with_policy(Mode::Nonblocking, policy);
        ctx.enable_trace(true);
        let a = random_matrix(6, 0.05);
        for k in 0..10 {
            a.set(k, k, 1).unwrap();
        }
        a.remove(0, 1).unwrap(); // 11 pending entries over 10 rows
        let out = Matrix::<i64>::new(N, N).unwrap();
        let d = Descriptor::default();
        ctx.mxm(&out, NoMask, NoAccum, plus_times::<i64>(), &a, &a, &d)
            .unwrap();
        ctx.wait().unwrap();
        let trace = ctx.take_trace();
        let overlays: Vec<_> = trace.iter().filter(|e| e.kind == "overlay").collect();
        assert_eq!(overlays.len(), 1, "policy {policy:?}: {trace:?}");
        let f = overlays[0];
        assert_eq!(f.pending_len, 11);
        assert_eq!(f.merged_rows, 10); // (0,0) and (0,1) share row 0
        assert!(f.seq.is_none(), "overlay is an interior dependency");
        assert_eq!((f.rows, f.cols), (N, N));
        for e in trace.iter().filter(|e| e.kind != "overlay") {
            assert_eq!((e.pending_len, e.merged_rows), (0, 0));
        }
        // capture did not drain the handle's log — the pending updates
        // are still buffered (the overlay merge observed, not consumed)
        assert_eq!(a.delta_stats().pending_len, 11);
    }
}

/// A completion-forcing read on a handle with pending updates still
/// drains the log (eager flush), while the overlay capture above never
/// does — the two sides of the read path.
#[test]
fn forcing_read_drains_the_log() {
    let _ctx = Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential);
    let a = random_matrix(7, 0.05);
    let before = a.nvals().unwrap();
    for k in 0..10 {
        a.set(k, k, 1).unwrap();
    }
    a.remove(k_absent(), k_absent()).unwrap();
    assert_eq!(a.delta_stats().pending_len, 11);
    let after = a.nvals().unwrap(); // forces: drains the log
    assert_eq!(a.delta_stats().pending_len, 0);
    assert!(after >= before.saturating_sub(11));
    assert_eq!(a.get(3, 3).unwrap(), Some(1));
}

/// An in-bounds coordinate `random_matrix` never populates densely —
/// used as a guaranteed-harmless removeElement target.
fn k_absent() -> usize {
    N - 1
}

/// The capi facade exposes the same hooks on the global context.
#[test]
fn capi_trace_hooks_roundtrip() {
    graphblas_capi::with_session(Mode::Nonblocking, || {
        graphblas_capi::enable_trace(true).unwrap();
        graphblas_capi::wait().unwrap();
        assert!(graphblas_capi::take_trace().unwrap().is_empty());
    })
    .unwrap();
}
