//! Experiment F3 (DESIGN.md): the Figure 3 `BC_update` algorithm
//! cross-validated against classic Brandes over generated graph
//! families, batch sizes, and both execution modes. Unweighted BC is
//! exact up to float summation order, so tolerances are tight.

use graphblas_algorithms::{bc_update, betweenness};
use graphblas_core::prelude::*;
use graphblas_gen::{
    binary_tree, complete, cycle, erdos_renyi_gnm, grid2d, path, rmat, star, EdgeList, RmatParams,
};
use graphblas_reference::{
    bc::{brandes, brandes_batch},
    AdjGraph,
};

fn to_matrix(g: &EdgeList) -> Matrix<i32> {
    Matrix::from_tuples(g.n, g.n, &g.int_tuples()).unwrap()
}

fn check_graph(ctx: &Context, g: &EdgeList, batch: usize, tol: f64) {
    let a = to_matrix(g);
    let got = betweenness(ctx, &a, batch).unwrap();
    let want = brandes(&AdjGraph::from_edges(g.n, &g.edges));
    for (v, (x, y)) in got.iter().zip(&want).enumerate() {
        assert!(
            (*x as f64 - y).abs() <= tol,
            "vertex {v}: GraphBLAS {x} vs Brandes {y} (n={}, batch={batch})",
            g.n
        );
    }
}

#[test]
fn structured_families() {
    let ctx = Context::blocking();
    for g in [
        path(12),
        cycle(9),
        star(10),
        complete(6),
        grid2d(4, 5),
        binary_tree(3),
    ] {
        let g = g.dedup().without_self_loops();
        check_graph(&ctx, &g, 4, 1e-3);
    }
}

#[test]
fn erdos_renyi_various_batches() {
    let ctx = Context::blocking();
    for seed in [1, 2, 3] {
        let g = erdos_renyi_gnm(40, 160, seed).without_self_loops().dedup();
        for batch in [1, 3, 7, 40] {
            check_graph(&ctx, &g, batch, 1e-2);
        }
    }
}

#[test]
fn rmat_skewed() {
    let ctx = Context::blocking();
    let g = rmat(7, 6, RmatParams::default(), 4)
        .dedup()
        .without_self_loops();
    check_graph(&ctx, &g, 16, 1e-1);
}

#[test]
fn single_batch_matches_reference_batch() {
    // bc_update over a source subset equals the Brandes batch quantity
    let ctx = Context::blocking();
    let g = erdos_renyi_gnm(30, 120, 9).without_self_loops().dedup();
    let a = to_matrix(&g);
    let adj = AdjGraph::from_edges(g.n, &g.edges);
    for sources in [vec![0usize], vec![3, 7, 11], vec![29, 0, 15, 8]] {
        let delta = bc_update(&ctx, &a, &sources).unwrap();
        let want = brandes_batch(&adj, &sources);
        let mut got = vec![0.0f32; g.n];
        for (i, v) in delta.extract_tuples().unwrap() {
            got[i] = v;
        }
        for (x, y) in got.iter().zip(&want) {
            assert!((*x as f64 - y).abs() < 1e-3, "{got:?} vs {want:?}");
        }
    }
}

#[test]
fn nonblocking_mode_full_run() {
    let nctx = Context::nonblocking();
    let g = erdos_renyi_gnm(25, 100, 13).without_self_loops().dedup();
    check_graph(&nctx, &g, 5, 1e-2);
    nctx.wait().unwrap();
}

#[test]
fn graph_with_isolated_vertices() {
    // vertices with no edges at all must get BC 0 and not break the
    // forward sweep
    let ctx = Context::blocking();
    let g = EdgeList::new(8, vec![(0, 1), (1, 2), (2, 3)]);
    check_graph(&ctx, &g, 8, 1e-4);
}

#[test]
fn two_components() {
    let ctx = Context::blocking();
    let g = EdgeList::new(
        8,
        vec![(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)],
    );
    check_graph(&ctx, &g, 3, 1e-4);
}
