//! Property-based validation of the vector operations (mxv, vxm,
//! eWise*, extract/assign, select, reduce) against dense models.

use graphblas_core::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct VecCase {
    n: usize,
    tuples: Vec<(usize, i64)>,
}

fn sparse_vec(n: usize, max_nnz: usize) -> impl Strategy<Value = VecCase> {
    proptest::collection::vec((0..n, -30i64..30), 0..=max_nnz).prop_map(move |mut t| {
        t.sort_by_key(|&(i, _)| i);
        t.dedup_by_key(|&mut (i, _)| i);
        VecCase { n, tuples: t }
    })
}

#[derive(Debug, Clone)]
struct MatCase {
    nrows: usize,
    ncols: usize,
    tuples: Vec<(usize, usize, i64)>,
}

fn sparse_mat(nrows: usize, ncols: usize, max_nnz: usize) -> impl Strategy<Value = MatCase> {
    proptest::collection::vec((0..nrows, 0..ncols, -30i64..30), 0..=max_nnz).prop_map(
        move |mut t| {
            t.sort_by_key(|&(i, j, _)| (i, j));
            t.dedup_by_key(|&mut (i, j, _)| (i, j));
            MatCase {
                nrows,
                ncols,
                tuples: t,
            }
        },
    )
}

fn vecd(c: &VecCase) -> Vec<Option<i64>> {
    let mut d = vec![None; c.n];
    for &(i, v) in &c.tuples {
        d[i] = Some(v);
    }
    d
}

fn matd(c: &MatCase) -> Vec<Vec<Option<i64>>> {
    let mut d = vec![vec![None; c.ncols]; c.nrows];
    for &(i, j, v) in &c.tuples {
        d[i][j] = Some(v);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mxv_matches_dense_model(
        a in sparse_mat(6, 5, 18),
        u in sparse_vec(5, 5),
    ) {
        let ctx = Context::blocking();
        let am = Matrix::from_tuples(a.nrows, a.ncols, &a.tuples).unwrap();
        let uv = Vector::from_tuples(u.n, &u.tuples).unwrap();
        let w = Vector::<i64>::new(6).unwrap();
        ctx.mxv(&w, NoMask, NoAccum, plus_times::<i64>(), &am, &uv, &Descriptor::default()).unwrap();
        let (da, du) = (matd(&a), vecd(&u));
        for (i, row) in da.iter().enumerate() {
            let mut acc: Option<i64> = None;
            for k in 0..5 {
                if let (Some(x), Some(y)) = (row[k], du[k]) {
                    let p = x.wrapping_mul(y);
                    acc = Some(acc.map_or(p, |s| s.wrapping_add(p)));
                }
            }
            prop_assert_eq!(w.get(i).unwrap(), acc);
        }
    }

    #[test]
    fn vxm_equals_mxv_on_transpose(
        a in sparse_mat(6, 5, 18),
        u in sparse_vec(6, 6),
    ) {
        let ctx = Context::blocking();
        let am = Matrix::from_tuples(a.nrows, a.ncols, &a.tuples).unwrap();
        let uv = Vector::from_tuples(u.n, &u.tuples).unwrap();
        let w1 = Vector::<i64>::new(5).unwrap();
        let w2 = Vector::<i64>::new(5).unwrap();
        ctx.vxm(&w1, NoMask, NoAccum, plus_times::<i64>(), &uv, &am, &Descriptor::default()).unwrap();
        ctx.mxv(&w2, NoMask, NoAccum, plus_times::<i64>(), &am, &uv, &Descriptor::default().transpose_first()).unwrap();
        prop_assert_eq!(w1.extract_tuples().unwrap(), w2.extract_tuples().unwrap());
    }

    #[test]
    fn vector_masked_write_model(
        w0 in sparse_vec(8, 8),
        t in sparse_vec(8, 8),
        m in sparse_vec(8, 8),
        comp in any::<bool>(),
        repl in any::<bool>(),
    ) {
        // w<mask> (⊙=|=) identity(t) against an element-wise model
        let ctx = Context::blocking();
        let w = Vector::from_tuples(8, &w0.tuples).unwrap();
        let tv = Vector::from_tuples(8, &t.tuples).unwrap();
        let mv = Vector::from_tuples(8, &m.tuples).unwrap();
        let mut d = Descriptor::default().structural_mask();
        if comp { d = d.complement_mask(); }
        if repl { d = d.replace(); }
        ctx.apply_vector(&w, &mv, NoAccum, Identity::new(), &tv, &d).unwrap();
        let (dw, dt, dm) = (vecd(&w0), vecd(&t), vecd(&m));
        for i in 0..8 {
            let admitted = dm[i].is_some() != comp;
            let want = if admitted { dt[i] } else if repl { None } else { dw[i] };
            prop_assert_eq!(w.get(i).unwrap(), want, "i={}", i);
        }
    }

    #[test]
    fn select_is_filter(u in sparse_vec(10, 10), thresh in -20i64..20) {
        let ctx = Context::blocking();
        let uv = Vector::from_tuples(u.n, &u.tuples).unwrap();
        let w = Vector::<i64>::new(10).unwrap();
        ctx.select_vector(&w, NoMask, NoAccum, ValueGt(thresh), &uv, &Descriptor::default()).unwrap();
        let want: Vec<(usize, i64)> = u.tuples.iter().copied().filter(|&(_, v)| v > thresh).collect();
        prop_assert_eq!(w.extract_tuples().unwrap(), want);
    }

    #[test]
    fn vector_extract_assign_round_trip(
        u in sparse_vec(9, 9),
        sel in proptest::sample::subsequence((0usize..9).collect::<Vec<_>>(), 1..=9),
    ) {
        let ctx = Context::blocking();
        let uv = Vector::from_tuples(u.n, &u.tuples).unwrap();
        let sub = Vector::<i64>::new(sel.len()).unwrap();
        ctx.extract_vector(&sub, NoMask, NoAccum, &uv, IndexSelection::List(&sel), &Descriptor::default()).unwrap();
        let target = uv.dup();
        ctx.assign_vector(&target, NoMask, NoAccum, &sub, IndexSelection::List(&sel), &Descriptor::default()).unwrap();
        prop_assert_eq!(target.extract_tuples().unwrap(), uv.extract_tuples().unwrap());
    }

    #[test]
    fn reduce_vector_scalar_is_sum(u in sparse_vec(12, 12)) {
        let ctx = Context::blocking();
        let uv = Vector::from_tuples(u.n, &u.tuples).unwrap();
        let got = ctx.reduce_vector_to_scalar(PlusMonoid::<i64>::new(), &uv).unwrap();
        let want: i64 = u.tuples.iter().map(|&(_, v)| v).fold(0, |a, b| a.wrapping_add(b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kron_matches_dense_model(
        a in sparse_mat(3, 3, 6),
        b in sparse_mat(2, 4, 6),
    ) {
        let ctx = Context::blocking();
        let am = Matrix::from_tuples(a.nrows, a.ncols, &a.tuples).unwrap();
        let bm = Matrix::from_tuples(b.nrows, b.ncols, &b.tuples).unwrap();
        let c = Matrix::<i64>::new(6, 12).unwrap();
        ctx.kronecker(&c, NoMask, NoAccum, Times::<i64>::new(), &am, &bm, &Descriptor::default()).unwrap();
        let got: std::collections::BTreeMap<(usize, usize), i64> =
            c.extract_tuples().unwrap().into_iter().map(|(i, j, v)| ((i, j), v)).collect();
        let mut want = std::collections::BTreeMap::new();
        for &(i1, j1, x) in &a.tuples {
            for &(i2, j2, y) in &b.tuples {
                want.insert((i1 * 2 + i2, j1 * 4 + j2), x.wrapping_mul(y));
            }
        }
        prop_assert_eq!(got, want);
    }
}
