//! Property-based validation of the core operations against a dense
//! `Option<T>`-matrix model: the set-notation semantics of §II executed
//! naively, with masks/accumulators/descriptors applied per Figure 2.

use graphblas_core::prelude::*;
use proptest::prelude::*;

type Dense = Vec<Vec<Option<i64>>>;

#[derive(Debug, Clone)]
struct SparseCase {
    nrows: usize,
    ncols: usize,
    tuples: Vec<(usize, usize, i64)>,
}

fn sparse(nrows: usize, ncols: usize, max_nnz: usize) -> impl Strategy<Value = SparseCase> {
    proptest::collection::vec((0..nrows, 0..ncols, -50i64..50), 0..=max_nnz).prop_map(
        move |mut t| {
            t.sort_by_key(|&(i, j, _)| (i, j));
            t.dedup_by_key(|&mut (i, j, _)| (i, j));
            SparseCase {
                nrows,
                ncols,
                tuples: t,
            }
        },
    )
}

fn to_matrix(c: &SparseCase) -> Matrix<i64> {
    Matrix::from_tuples(c.nrows, c.ncols, &c.tuples).unwrap()
}

fn to_dense(c: &SparseCase) -> Dense {
    let mut d = vec![vec![None; c.ncols]; c.nrows];
    for &(i, j, v) in &c.tuples {
        d[i][j] = Some(v);
    }
    d
}

fn dense_of(m: &Matrix<i64>) -> Dense {
    let mut d = vec![vec![None; m.ncols()]; m.nrows()];
    for (i, j, v) in m.extract_tuples().unwrap() {
        d[i][j] = Some(v);
    }
    d
}

/// The §II set-notation mxm over the dense model.
fn model_mxm(a: &Dense, b: &Dense) -> Dense {
    let (m, k) = (a.len(), b.len());
    let n = b[0].len();
    let mut c = vec![vec![None; n]; m];
    for i in 0..m {
        for j in 0..n {
            let mut acc: Option<i64> = None;
            for l in 0..k {
                if let (Some(x), Some(y)) = (a[i][l], b[l][j]) {
                    let p = x.wrapping_mul(y);
                    acc = Some(acc.map_or(p, |s| s.wrapping_add(p)));
                }
            }
            c[i][j] = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mxm_matches_dense_model(
        a in sparse(7, 5, 20),
        b in sparse(5, 6, 20),
    ) {
        let ctx = Context::blocking();
        let c = Matrix::<i64>::new(7, 6).unwrap();
        ctx.mxm(&c, NoMask, NoAccum, plus_times::<i64>(), &to_matrix(&a), &to_matrix(&b), &Descriptor::default()).unwrap();
        prop_assert_eq!(dense_of(&c), model_mxm(&to_dense(&a), &to_dense(&b)));
    }

    #[test]
    fn transpose_involution_and_product_rule(
        a in sparse(6, 4, 15),
        b in sparse(4, 5, 15),
    ) {
        let ctx = Context::blocking();
        let am = to_matrix(&a);
        let bm = to_matrix(&b);
        // (A^T)^T == A
        let at = Matrix::<i64>::new(4, 6).unwrap();
        let att = Matrix::<i64>::new(6, 4).unwrap();
        ctx.transpose(&at, NoMask, NoAccum, &am, &Descriptor::default()).unwrap();
        ctx.transpose(&att, NoMask, NoAccum, &at, &Descriptor::default()).unwrap();
        prop_assert_eq!(att.extract_tuples().unwrap(), am.extract_tuples().unwrap());
        // (AB)^T == B^T A^T
        let ab = Matrix::<i64>::new(6, 5).unwrap();
        ctx.mxm(&ab, NoMask, NoAccum, plus_times::<i64>(), &am, &bm, &Descriptor::default()).unwrap();
        let abt = Matrix::<i64>::new(5, 6).unwrap();
        ctx.transpose(&abt, NoMask, NoAccum, &ab, &Descriptor::default()).unwrap();
        let btat = Matrix::<i64>::new(5, 6).unwrap();
        ctx.mxm(
            &btat, NoMask, NoAccum, plus_times::<i64>(), &bm, &am,
            &Descriptor::default().transpose_first().transpose_second(),
        ).unwrap();
        prop_assert_eq!(abt.extract_tuples().unwrap(), btat.extract_tuples().unwrap());
    }

    #[test]
    fn ewise_patterns_are_union_and_intersection(
        a in sparse(6, 6, 18),
        b in sparse(6, 6, 18),
    ) {
        let ctx = Context::blocking();
        let am = to_matrix(&a);
        let bm = to_matrix(&b);
        let sum = Matrix::<i64>::new(6, 6).unwrap();
        let prod = Matrix::<i64>::new(6, 6).unwrap();
        ctx.ewise_add_matrix(&sum, NoMask, NoAccum, Plus::new(), &am, &bm, &Descriptor::default()).unwrap();
        ctx.ewise_mult_matrix(&prod, NoMask, NoAccum, Times::new(), &am, &bm, &Descriptor::default()).unwrap();
        use std::collections::BTreeSet;
        let pa: BTreeSet<(usize, usize)> = a.tuples.iter().map(|&(i, j, _)| (i, j)).collect();
        let pb: BTreeSet<(usize, usize)> = b.tuples.iter().map(|&(i, j, _)| (i, j)).collect();
        let psum: BTreeSet<(usize, usize)> =
            sum.extract_tuples().unwrap().iter().map(|&(i, j, _)| (i, j)).collect();
        let pprod: BTreeSet<(usize, usize)> =
            prod.extract_tuples().unwrap().iter().map(|&(i, j, _)| (i, j)).collect();
        prop_assert_eq!(psum, pa.union(&pb).copied().collect());
        prop_assert_eq!(pprod, pa.intersection(&pb).copied().collect());
        // eWiseAdd with a commutative ⊕ is commutative
        let sum2 = Matrix::<i64>::new(6, 6).unwrap();
        ctx.ewise_add_matrix(&sum2, NoMask, NoAccum, Plus::new(), &bm, &am, &Descriptor::default()).unwrap();
        prop_assert_eq!(sum.extract_tuples().unwrap(), sum2.extract_tuples().unwrap());
    }

    #[test]
    fn mask_and_complement_partition_the_output(
        a in sparse(5, 5, 12),
        b in sparse(5, 5, 12),
        mask in sparse(5, 5, 12),
    ) {
        // C<M> merge ∪ C<!M> replace parts reconstruct the unmasked result
        let ctx = Context::blocking();
        let am = to_matrix(&a);
        let bm = to_matrix(&b);
        let mm = to_matrix(&mask);
        let full = Matrix::<i64>::new(5, 5).unwrap();
        ctx.mxm(&full, NoMask, NoAccum, plus_times::<i64>(), &am, &bm, &Descriptor::default()).unwrap();

        let part1 = Matrix::<i64>::new(5, 5).unwrap();
        ctx.mxm(&part1, &mm, NoAccum, plus_times::<i64>(), &am, &bm,
            &Descriptor::default().structural_mask().replace()).unwrap();
        let part2 = Matrix::<i64>::new(5, 5).unwrap();
        ctx.mxm(&part2, &mm, NoAccum, plus_times::<i64>(), &am, &bm,
            &Descriptor::default().structural_mask().complement_mask().replace()).unwrap();

        // the two parts are disjoint and their union is the full result
        let mut merged = part1.extract_tuples().unwrap();
        merged.extend(part2.extract_tuples().unwrap());
        merged.sort_by_key(|&(i, j, _)| (i, j));
        let mut want = full.extract_tuples().unwrap();
        want.sort_by_key(|&(i, j, _)| (i, j));
        prop_assert_eq!(merged, want);
    }

    #[test]
    fn accumulation_is_union_with_combine(
        c0 in sparse(5, 5, 12),
        a in sparse(5, 5, 12),
    ) {
        // C ⊙= apply(identity, A): Z = C + A on the union pattern
        let ctx = Context::blocking();
        let c = to_matrix(&c0);
        let am = to_matrix(&a);
        ctx.apply_matrix(&c, NoMask, Accum(Plus::<i64>::new()), Identity::new(), &am, &Descriptor::default()).unwrap();
        let dc = to_dense(&c0);
        let da = to_dense(&a);
        let mut want = vec![vec![None; 5]; 5];
        for i in 0..5 {
            for j in 0..5 {
                want[i][j] = match (dc[i][j], da[i][j]) {
                    (Some(x), Some(y)) => Some(x.wrapping_add(y)),
                    (Some(x), None) => Some(x),
                    (None, Some(y)) => Some(y),
                    (None, None) => None,
                };
            }
        }
        prop_assert_eq!(dense_of(&c), want);
    }

    #[test]
    fn build_extract_round_trip_with_duplicates(
        raw in proptest::collection::vec((0usize..6, 0usize..6, -9i64..9), 0..25),
    ) {
        // build combines duplicates with +; the result must match a map
        let m = Matrix::<i64>::new(6, 6).unwrap();
        let rows: Vec<usize> = raw.iter().map(|t| t.0).collect();
        let cols: Vec<usize> = raw.iter().map(|t| t.1).collect();
        let vals: Vec<i64> = raw.iter().map(|t| t.2).collect();
        m.build(&rows, &cols, &vals, &Plus::new()).unwrap();
        let mut want = std::collections::BTreeMap::new();
        for &(i, j, v) in &raw {
            *want.entry((i, j)).or_insert(0i64) += v;
        }
        let got: std::collections::BTreeMap<(usize, usize), i64> = m
            .extract_tuples()
            .unwrap()
            .into_iter()
            .map(|(i, j, v)| ((i, j), v))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn extract_then_assign_restores_region(
        a in sparse(6, 6, 20),
        rows in proptest::sample::subsequence(vec![0usize, 1, 2, 3, 4, 5], 1..=6),
        cols in proptest::sample::subsequence(vec![0usize, 1, 2, 3, 4, 5], 1..=6),
    ) {
        // extract a region, assign it back into a copy cleared at the
        // region: the region contents must be restored exactly
        let ctx = Context::blocking();
        let am = to_matrix(&a);
        let sub = Matrix::<i64>::new(rows.len(), cols.len()).unwrap();
        ctx.extract_matrix(&sub, NoMask, NoAccum, &am,
            IndexSelection::List(&rows), IndexSelection::List(&cols), &Descriptor::default()).unwrap();
        let target = am.dup();
        ctx.assign_matrix(&target, NoMask, NoAccum, &sub,
            IndexSelection::List(&rows), IndexSelection::List(&cols), &Descriptor::default()).unwrap();
        prop_assert_eq!(target.extract_tuples().unwrap(), am.extract_tuples().unwrap());
    }

    #[test]
    fn reduce_rows_matches_model(a in sparse(7, 5, 20)) {
        let ctx = Context::blocking();
        let w = Vector::<i64>::new(7).unwrap();
        ctx.reduce_rows(&w, NoMask, NoAccum, PlusMonoid::new(), &to_matrix(&a), &Descriptor::default()).unwrap();
        let d = to_dense(&a);
        for (i, row) in d.iter().enumerate() {
            let want = row.iter().filter_map(|x| *x).fold(None, |acc: Option<i64>, v| {
                Some(acc.map_or(v, |s| s.wrapping_add(v)))
            });
            prop_assert_eq!(w.get(i).unwrap(), want);
        }
    }

    #[test]
    fn replace_vs_merge_difference_is_only_outside_mask(
        c0 in sparse(5, 5, 12),
        a in sparse(5, 5, 12),
        mask in sparse(5, 5, 12),
    ) {
        let ctx = Context::blocking();
        let am = to_matrix(&a);
        let mm = to_matrix(&mask);
        let merge = to_matrix(&c0);
        let replace = to_matrix(&c0);
        ctx.apply_matrix(&merge, &mm, NoAccum, Identity::new(), &am,
            &Descriptor::default().structural_mask()).unwrap();
        ctx.apply_matrix(&replace, &mm, NoAccum, Identity::new(), &am,
            &Descriptor::default().structural_mask().replace()).unwrap();
        use std::collections::BTreeSet;
        let pm: BTreeSet<(usize, usize)> = mask.tuples.iter().map(|&(i, j, _)| (i, j)).collect();
        let dm = dense_of(&merge);
        let dr = dense_of(&replace);
        let dc = to_dense(&c0);
        for i in 0..5 {
            for j in 0..5 {
                if pm.contains(&(i, j)) {
                    // inside the mask both modes agree
                    prop_assert_eq!(dm[i][j], dr[i][j]);
                } else {
                    // outside: merge keeps old C, replace clears
                    prop_assert_eq!(dm[i][j], dc[i][j]);
                    prop_assert_eq!(dr[i][j], None);
                }
            }
        }
    }
}
