//! Out-of-core smoke test for mmap-backed cold tiles (feature
//! `mmap-cold`, Linux only — the test caps its own heap with
//! `setrlimit(RLIMIT_DATA)`).
//!
//! The scenario E13 records: a graph whose single-slab CSR **cannot be
//! allocated** under the process's memory cap is nevertheless built —
//! streaming, one tile stripe at a time — into a cold-tile file, then
//! BFS-traversed through a shared read-only mapping. File-backed
//! `MAP_SHARED` pages are not charged to `RLIMIT_DATA`, so the
//! traversal's resident set is the frontier's working stripes, not the
//! graph.
//!
//! This is a separate integration-test binary on purpose: it runs in
//! its own process, so shrinking the data segment cannot disturb other
//! tests (and cargo's own allocations happened before the cap).

#![cfg(all(feature = "mmap-cold", target_os = "linux"))]

use std::time::Instant;

use graphblas_core::storage::tiled::cold::{ColdTiled, ColdTiledWriter};

/// Heap cap for the test body, in bytes.
const CAP: u64 = 32 * 1024 * 1024;

/// Vertices in the synthetic graph.
const N: usize = 262_144;
/// Out-edges per vertex: one ring edge + 79 hashed chords.
const DEGREE: usize = 80;
/// Cold tile grid.
const GRID: (usize, usize) = (16, 16);

mod rlimit {
    /// `RLIMIT_DATA` caps the data segment: brk **and** anonymous
    /// private mappings (kernel ≥ 4.7) — i.e. the Rust heap — but not
    /// file-backed `MAP_SHARED` mappings.
    const RLIMIT_DATA: i32 = 2;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Lower the data-segment soft limit to `cap` bytes (respecting a
    /// lower pre-existing hard limit). Irreversible for this process's
    /// purposes — which is exactly what the test wants.
    pub fn cap_heap(cap: u64) {
        unsafe {
            let mut cur = Rlimit { cur: 0, max: 0 };
            assert_eq!(getrlimit(RLIMIT_DATA, &mut cur), 0, "getrlimit failed");
            let new = Rlimit {
                cur: cap.min(cur.max),
                max: cur.max,
            };
            assert_eq!(setrlimit(RLIMIT_DATA, &new), 0, "setrlimit failed");
        }
    }
}

/// Sorted, deduplicated out-neighbourhood of `i`: the ring successor
/// plus `DEGREE - 1` multiplicative-hash chords. Deterministic, O(1)
/// memory beyond the output buffer.
fn neighbours(i: usize, out: &mut Vec<usize>) {
    out.clear();
    out.push((i + 1) % N);
    let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for _ in 0..DEGREE - 1 {
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        out.push((h as usize) % N);
    }
    out.sort_unstable();
    out.dedup();
}

#[test]
fn out_of_core_bfs_under_heap_cap() {
    rlimit::cap_heap(CAP);

    // --- the slab is genuinely infeasible under the cap -------------
    // Analytic: nnz * 8 (values) + nnz * 8 (col indices as usize) is
    // already past 4× the cap before row_ptr; be conservative and
    // count only one word per stored entry plus row_ptr.
    let nnz_estimate = N * (DEGREE - 1); // dedup removes only a few
    let slab_words = nnz_estimate + N + 1;
    assert!(
        (slab_words * 8) as u64 >= 4 * CAP,
        "fixture too small to prove the out-of-core claim: slab ≈ {} MiB, cap {} MiB",
        slab_words * 8 >> 20,
        CAP >> 20,
    );
    // Runtime: the allocator itself refuses a slab-sized reservation
    // under the rlimit (try_reserve reports failure instead of
    // aborting).
    let mut probe: Vec<usize> = Vec::new();
    assert!(
        probe.try_reserve_exact(slab_words).is_err(),
        "a slab-sized allocation unexpectedly succeeded under the cap"
    );
    drop(probe);

    // --- streaming cold build ---------------------------------------
    let mut path = std::env::temp_dir();
    path.push(format!("gb-out-of-core-{}", std::process::id()));
    let build_start = Instant::now();
    let mut w = ColdTiledWriter::<()>::create(&path, N, N, GRID).unwrap();
    let mut row = Vec::with_capacity(DEGREE);
    let unit = [(); DEGREE];
    for i in 0..N {
        neighbours(i, &mut row);
        w.push_row(&row, &unit[..row.len()]).unwrap();
    }
    w.finish().unwrap();
    let build = build_start.elapsed();

    // --- BFS through the mapping ------------------------------------
    let cold = ColdTiled::<()>::open(&path).unwrap();
    assert_eq!(cold.nrows(), N);
    assert!(cold.nvals() >= N * (DEGREE - 2), "hash chords collapsed");
    let bfs_start = Instant::now();
    let levels = cold.bfs_levels(0);
    let bfs = bfs_start.elapsed();

    // The ring guarantees connectivity: every vertex is reached, and
    // the chords keep the diameter tiny.
    let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
    assert_eq!(reached, N, "ring edge should make the graph connected");
    let depth = levels.iter().copied().max().unwrap();
    assert!(
        depth <= 12,
        "deg-80 expander should have small diameter, got {depth}"
    );

    let file_len = std::fs::metadata(&path).unwrap().len();
    let _ = std::fs::remove_file(&path);

    // E13's raw numbers (driver captures test output with --nocapture).
    println!(
        "out-of-core: n={N} nnz={} file={} MiB cap={} MiB slab≈{} MiB \
         build={build:.2?} bfs={bfs:.2?} depth={depth}",
        cold.nvals(),
        file_len >> 20,
        CAP >> 20,
        slab_words * 8 >> 20,
    );
}
